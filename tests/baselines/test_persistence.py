"""Tests for index save / load."""

import numpy as np
import pytest

from repro.baselines.persistence import (
    graph_fingerprint,
    load_reads_index,
    load_sling_index,
    save_reads_index,
    save_sling_index,
)
from repro.baselines.reads import ReadsIndex
from repro.baselines.sling import SlingIndex
from repro.errors import DatasetError, ParameterError
from repro.graph.digraph import DiGraph


class TestFingerprint:
    def test_stable_for_same_structure(self, paper_graph):
        other = DiGraph.from_edges(
            paper_graph.num_nodes, list(paper_graph.edges())
        )
        assert graph_fingerprint(paper_graph) == graph_fingerprint(other)

    def test_differs_for_different_structure(self, paper_graph):
        other = DiGraph.from_edges(paper_graph.num_nodes, [(0, 1)])
        assert graph_fingerprint(paper_graph) != graph_fingerprint(other)

    def test_weights_enter_fingerprint(self):
        plain = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[1.0, 1.0])
        heavy = DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[2.0, 1.0])
        assert graph_fingerprint(plain) != graph_fingerprint(heavy)


class TestSlingPersistence:
    def test_round_trip_preserves_queries(self, small_random_graph, tmp_path):
        index = SlingIndex(small_random_graph, num_d_samples=50, seed=1)
        path = save_sling_index(index, tmp_path / "sling.npz")
        loaded = load_sling_index(path, small_random_graph)
        assert np.array_equal(loaded.d, index.d)
        assert np.array_equal(loaded.query(3), index.query(3))

    def test_wrong_graph_rejected(self, small_random_graph, paper_graph, tmp_path):
        index = SlingIndex(small_random_graph, num_d_samples=10, seed=2)
        path = save_sling_index(index, tmp_path / "sling.npz")
        with pytest.raises(ParameterError):
            load_sling_index(path, paper_graph)

    def test_missing_file(self, paper_graph, tmp_path):
        with pytest.raises(DatasetError):
            load_sling_index(tmp_path / "nope.npz", paper_graph)

    def test_wrong_kind_rejected(self, paper_graph, tmp_path):
        reads = ReadsIndex(paper_graph, r=5, seed=3)
        path = save_reads_index(reads, tmp_path / "reads.npz")
        with pytest.raises(DatasetError):
            load_sling_index(path, paper_graph)


class TestReadsPersistence:
    def test_round_trip_preserves_index(self, small_random_graph, tmp_path):
        index = ReadsIndex(small_random_graph, r=20, r_q=2, seed=4)
        path = save_reads_index(index, tmp_path / "reads.npz")
        loaded = load_reads_index(path, small_random_graph, seed=4)
        assert np.array_equal(loaded.pointers, index.pointers)
        assert np.array_equal(loaded.alive, index.alive)
        assert loaded.r == index.r and loaded.t == index.t

    def test_loaded_index_still_updatable(self, small_random_graph, tmp_path):
        from repro.graph.builder import GraphBuilder

        index = ReadsIndex(small_random_graph, r=10, seed=5)
        path = save_reads_index(index, tmp_path / "reads.npz")
        loaded = load_reads_index(path, small_random_graph, seed=5)
        edge = next(iter(small_random_graph.edges()))
        builder = GraphBuilder.from_graph(small_random_graph)
        builder.remove_edge(*edge)
        loaded.apply_delta(builder.build(), removed=[edge])
        assert not np.any(
            loaded.pointers[:, edge[1]] == edge[0]
        )

    def test_wrong_graph_rejected(self, small_random_graph, paper_graph, tmp_path):
        index = ReadsIndex(small_random_graph, r=5, seed=6)
        path = save_reads_index(index, tmp_path / "reads.npz")
        with pytest.raises(ParameterError):
            load_reads_index(path, paper_graph)

    def test_garbage_file_rejected(self, paper_graph, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, data=np.zeros(3))
        with pytest.raises(DatasetError):
            load_reads_index(path, paper_graph)
