"""Tests for the per-snapshot-recompute temporal adapters."""

import numpy as np
import pytest

from repro.baselines.temporal_adapters import (
    CrashSimAlgorithm,
    PowerMethodAlgorithm,
    make_snapshot_algorithm,
    temporal_query_by_recompute,
)
from repro.core.params import CrashSimParams
from repro.core.queries import ThresholdQuery, TrendQuery
from repro.errors import ExperimentError, QueryError
from repro.graph.temporal import TemporalGraphBuilder


def pair_temporal():
    """sim(0, 1) = 0.6 in snapshot 0, then 0 after the rewiring."""
    builder = TemporalGraphBuilder(4, directed=True)
    builder.push_snapshot([(2, 0), (2, 1)])
    builder.push_snapshot([(2, 0), (3, 1)])
    return builder.build()


class TestFactory:
    @pytest.mark.parametrize(
        "name", ["crashsim", "probesim", "sling", "reads", "power"]
    )
    def test_known_names(self, name):
        algorithm = make_snapshot_algorithm(name, seed=0)
        assert algorithm.name == name

    def test_unknown_name(self):
        with pytest.raises(ExperimentError):
            make_snapshot_algorithm("quantum")


class TestPowerOracleAdapter:
    def test_exact_threshold_answer(self):
        temporal = pair_temporal()
        oracle = make_snapshot_algorithm("power")
        result = temporal_query_by_recompute(
            temporal, 0, ThresholdQuery(theta=0.3), oracle
        )
        # Node 1 passes snapshot 0 (0.6 > 0.3) but fails snapshot 1 (0.0).
        assert result.survivors == ()

    def test_exact_trend_answer(self):
        temporal = pair_temporal()
        oracle = make_snapshot_algorithm("power")
        result = temporal_query_by_recompute(
            temporal, 0, TrendQuery(direction="decreasing"), oracle
        )
        assert 1 in result.survivors

    def test_query_before_prepare_rejected(self):
        oracle = PowerMethodAlgorithm()
        with pytest.raises(ExperimentError):
            oracle.query(0)


class TestMonteCarloAdapters:
    def test_crashsim_adapter_full_vector(self, paper_graph):
        algorithm = CrashSimAlgorithm(
            params=CrashSimParams(n_r_override=50), seed=1
        )
        algorithm.prepare(paper_graph)
        scores = algorithm.query(0)
        assert scores.shape == (paper_graph.num_nodes,)
        assert scores[0] == 1.0

    def test_reads_adapter_advances_incrementally(self):
        temporal = pair_temporal()
        algorithm = make_snapshot_algorithm("reads", r=50, r_q=3, seed=2)
        result = temporal_query_by_recompute(
            temporal, 0, ThresholdQuery(theta=0.3), algorithm
        )
        # The index was updated, not rebuilt: its graph is the last snapshot.
        assert algorithm.graph.same_structure(temporal.snapshot(1))
        assert result.survivors == ()

    def test_sling_adapter_rebuilds(self):
        temporal = pair_temporal()
        algorithm = make_snapshot_algorithm("sling", num_d_samples=200, seed=3)
        result = temporal_query_by_recompute(
            temporal, 0, ThresholdQuery(theta=0.3), algorithm
        )
        assert result.survivors == ()

    def test_probesim_adapter(self):
        temporal = pair_temporal()
        algorithm = make_snapshot_algorithm("probesim", n_r=400, seed=4)
        result = temporal_query_by_recompute(
            temporal, 0, ThresholdQuery(theta=0.3), algorithm
        )
        assert result.survivors == ()

    def test_history_recorded(self):
        temporal = pair_temporal()
        algorithm = make_snapshot_algorithm("power")
        result = temporal_query_by_recompute(
            temporal, 0, ThresholdQuery(theta=0.0), algorithm
        )
        assert len(result.history) >= 1
        assert result.history[0][1] == pytest.approx(0.6, abs=1e-9)


class TestDriverValidation:
    def test_invalid_interval(self):
        temporal = pair_temporal()
        with pytest.raises(QueryError):
            temporal_query_by_recompute(
                temporal,
                0,
                ThresholdQuery(theta=0.1),
                make_snapshot_algorithm("power"),
                interval=(1, 1),
            )
