"""Tests for the SLING baseline (last-meeting decomposition)."""

import numpy as np
import pytest

from repro.baselines.power_method import power_method_all_pairs
from repro.baselines.sling import (
    SlingIndex,
    estimate_d_monte_carlo,
    exact_d_small_graph,
)
from repro.errors import ParameterError


class TestCorrectionFactors:
    def test_exact_d_bounds(self, paper_graph):
        d = exact_d_small_graph(paper_graph, 0.6)
        assert np.all(d >= 0.0)
        assert np.all(d <= 1.0)

    def test_exact_d_dangling_node_is_one(self, dangling_graph):
        d = exact_d_small_graph(dangling_graph, 0.6)
        # Walks from a node with no in-neighbours never move: never meet.
        assert d[0] == pytest.approx(1.0)

    def test_exact_d_pair_graph(self, tiny_pair_graph):
        # Two walks from node 0 both step to node 2 (if both survive) and
        # meet there: meet(0,0) = c, so d(0) = 1 - c.
        d = exact_d_small_graph(tiny_pair_graph, 0.36)
        assert d[0] == pytest.approx(1 - 0.36, abs=1e-9)
        assert d[2] == pytest.approx(1.0)

    def test_monte_carlo_d_matches_exact(self, paper_graph):
        exact = exact_d_small_graph(paper_graph, 0.6)
        estimated = estimate_d_monte_carlo(paper_graph, 0.6, 3000, seed=1)
        assert np.abs(exact - estimated).max() < 0.04

    def test_estimate_d_validation(self, paper_graph):
        with pytest.raises(ParameterError):
            estimate_d_monte_carlo(paper_graph, 0.6, 0)


class TestQueries:
    def test_exact_d_reproduces_simrank(self, small_random_graph):
        """With the exact d(·) and a deep truncation, the SLING
        decomposition equals the Power-Method SimRank."""
        graph = small_random_graph
        c = 0.6
        truth = power_method_all_pairs(graph, c)
        d = exact_d_small_graph(graph, c, iterations=120)
        index = SlingIndex(graph, c=c, epsilon=0.001, d_values=d)
        for source in (0, 9, 31):
            scores = index.query(source)
            assert np.abs(truth[source] - scores).max() < 0.005

    def test_monte_carlo_index_close_to_truth(self, paper_graph):
        truth = power_method_all_pairs(paper_graph, 0.6)
        index = SlingIndex(paper_graph, c=0.6, epsilon=0.01, num_d_samples=3000, seed=2)
        scores = index.query(0)
        assert np.abs(truth[0] - scores).max() < 0.04

    def test_source_scores_one(self, paper_graph):
        index = SlingIndex(paper_graph, num_d_samples=20, seed=3)
        assert index.query(4)[4] == 1.0

    def test_query_validation(self, paper_graph):
        index = SlingIndex(paper_graph, num_d_samples=10, seed=4)
        with pytest.raises(ParameterError):
            index.query(99)


class TestConstruction:
    def test_d_values_shape_checked(self, paper_graph):
        with pytest.raises(ParameterError):
            SlingIndex(paper_graph, d_values=np.ones(3))

    def test_parameter_validation(self, paper_graph):
        with pytest.raises(ParameterError):
            SlingIndex(paper_graph, c=0.0)
        with pytest.raises(ParameterError):
            SlingIndex(paper_graph, epsilon=0.0)

    def test_depth_grows_with_precision(self, paper_graph):
        d = np.ones(paper_graph.num_nodes)
        loose = SlingIndex(paper_graph, epsilon=0.1, d_values=d)
        tight = SlingIndex(paper_graph, epsilon=0.001, d_values=d)
        assert tight.depth > loose.depth
