"""Tests for the READS one-way-graph index."""

import numpy as np
import pytest

from repro.baselines.power_method import power_method_all_pairs
from repro.baselines.reads import ReadsIndex
from repro.errors import ParameterError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph


def assert_pointers_valid(index: ReadsIndex):
    """Every pointer entry must be -1 or a current in-neighbour."""
    graph = index.graph
    for node in graph.nodes():
        neighbors = set(graph.in_neighbors(node).tolist())
        column = index.pointers[:, node]
        if not neighbors:
            assert np.all(column == -1)
        else:
            assert np.all(np.isin(column, list(neighbors)))


class TestConstruction:
    def test_pointers_are_in_neighbors(self, paper_graph):
        index = ReadsIndex(paper_graph, r=20, seed=1)
        assert_pointers_valid(index)

    def test_alive_rate_matches_sqrt_c(self, medium_random_graph):
        index = ReadsIndex(medium_random_graph, r=100, c=0.49, seed=2)
        rate = index.alive.mean()
        assert rate == pytest.approx(0.7, abs=0.02)

    def test_validation(self, paper_graph):
        with pytest.raises(ParameterError):
            ReadsIndex(paper_graph, r=0)
        with pytest.raises(ParameterError):
            ReadsIndex(paper_graph, c=1.0)


class TestQueries:
    def test_known_value_pair_graph(self, tiny_pair_graph):
        index = ReadsIndex(tiny_pair_graph, r=400, r_q=10, c=0.36, seed=3)
        scores = index.query(0)
        assert scores[0] == 1.0
        assert scores[1] == pytest.approx(0.36, abs=0.05)
        assert scores[2] == 0.0

    def test_roughly_matches_power_method(self, small_random_graph):
        # READS has no error guarantee (paper §V-A); the check is loose.
        truth = power_method_all_pairs(small_random_graph, 0.6)
        index = ReadsIndex(small_random_graph, r=300, r_q=5, seed=4)
        scores = index.query(2)
        assert np.abs(truth[2] - scores).max() < 0.15

    def test_query_validation(self, paper_graph):
        index = ReadsIndex(paper_graph, r=5, seed=5)
        with pytest.raises(ParameterError):
            index.query(99)


class TestDynamicUpdates:
    def test_deletion_resamples_stale_pointers(self, paper_graph):
        index = ReadsIndex(paper_graph, r=50, seed=6)
        # Remove B -> A (B is an in-neighbour of A).
        builder = GraphBuilder.from_graph(paper_graph)
        builder.remove_edge("B", "A")
        new_graph = builder.build()
        changed = index.apply_delta(new_graph, removed=[(1, 0)])
        assert changed >= 0
        assert_pointers_valid(index)
        assert not np.any(index.pointers[:, 0] == 1)

    def test_insertion_preserves_uniformity(self):
        # Node 0 with in-neighbours {1}; insert 2 -> 0: pointers must mix to
        # roughly 50/50 between 1 and 2.
        graph = DiGraph.from_edges(3, [(1, 0)])
        index = ReadsIndex(graph, r=4000, seed=7)
        new_graph = DiGraph.from_edges(3, [(1, 0), (2, 0)])
        index.apply_delta(new_graph, added=[(2, 0)])
        assert_pointers_valid(index)
        fraction_new = float(np.mean(index.pointers[:, 0] == 2))
        assert fraction_new == pytest.approx(0.5, abs=0.05)

    def test_deletion_to_dangling_clears_pointer(self):
        graph = DiGraph.from_edges(2, [(1, 0)])
        index = ReadsIndex(graph, r=30, seed=8)
        new_graph = DiGraph.from_edges(2, [])
        index.apply_delta(new_graph, removed=[(1, 0)])
        assert np.all(index.pointers[:, 0] == -1)

    def test_undirected_delta_touches_both_endpoints(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)], directed=False)
        index = ReadsIndex(graph, r=40, seed=9)
        new_graph = DiGraph.from_edges(3, [(1, 2)], directed=False)
        index.apply_delta(new_graph, removed=[(0, 1)])
        assert_pointers_valid(index)

    def test_queries_after_update_stay_consistent(self, small_random_graph):
        index = ReadsIndex(small_random_graph, r=100, r_q=3, seed=10)
        edge = next(iter(small_random_graph.edges()))
        builder = GraphBuilder.from_graph(small_random_graph)
        builder.remove_edge(edge[0], edge[1])
        new_graph = builder.build()
        index.apply_delta(new_graph, removed=[edge])
        truth = power_method_all_pairs(new_graph, 0.6)
        scores = index.query(1)
        assert np.abs(truth[1] - scores).max() < 0.2

    def test_node_count_change_rejected(self, paper_graph):
        index = ReadsIndex(paper_graph, r=5, seed=11)
        bigger = DiGraph.from_edges(20, [(0, 1)])
        with pytest.raises(ParameterError):
            index.apply_delta(bigger)
