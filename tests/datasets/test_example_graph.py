"""Tests pinning the reconstructed paper example graphs."""

import pytest

from repro.core.revreach import revreach_queue
from repro.datasets.example_graph import (
    EXAMPLE_NODES,
    example_graph,
    example_temporal_graph,
    node_id,
)


class TestStaticExample:
    def test_shape(self):
        graph = example_graph()
        assert graph.num_nodes == 8
        assert graph.num_edges == 15
        assert graph.node_labels == EXAMPLE_NODES

    def test_in_neighbor_structure_from_example2(self):
        graph = example_graph()
        expected = {
            "A": {"B", "C"},
            "B": {"A", "E"},
            "C": {"A", "B", "D"},
            "D": {"B", "C"},
            "E": {"B", "H"},
            "H": {"F", "G"},
        }
        for label, in_labels in expected.items():
            got = {
                EXAMPLE_NODES[i] for i in graph.in_neighbors(node_id(label))
            }
            assert got == in_labels, label

    def test_example2_walk_is_valid(self):
        # W(C) = (C, D, B, A) must be a valid reverse walk.
        graph = example_graph()
        walk = [node_id(x) for x in ("C", "D", "B", "A")]
        for previous, current in zip(walk, walk[1:]):
            assert current in graph.in_neighbors(previous)

    def test_example2_tree_probabilities(self):
        graph = example_graph()
        tree = revreach_queue(graph, node_id("A"), 3, 0.25, variant="paper")
        # The nine values Example 2 states, to the paper's printed precision.
        assert tree.probability(1, node_id("B")) == pytest.approx(0.25)
        assert tree.probability(1, node_id("C")) == pytest.approx(0.167, abs=5e-4)
        assert tree.probability(2, node_id("E")) == pytest.approx(0.0625)
        assert tree.probability(2, node_id("B")) == pytest.approx(0.0417, abs=5e-5)
        assert tree.probability(2, node_id("D")) == pytest.approx(0.0417, abs=5e-5)
        assert tree.probability(3, node_id("H")) == pytest.approx(0.0156, abs=5e-5)
        assert tree.probability(3, node_id("A")) == pytest.approx(0.0104, abs=5e-5)
        assert tree.probability(3, node_id("E")) == pytest.approx(0.0104, abs=5e-5)
        assert tree.probability(3, node_id("B")) == pytest.approx(0.0104, abs=5e-5)


class TestTemporalExample:
    def test_three_snapshots(self):
        temporal = example_temporal_graph()
        assert temporal.num_snapshots == 3
        assert temporal.num_nodes == 8

    def test_deltas_match_figure1(self):
        temporal = example_temporal_graph()
        h_to_f = (node_id("H"), node_id("F"))
        g_to_f = (node_id("G"), node_id("F"))
        assert temporal.delta(1).removed == frozenset({h_to_f})
        assert temporal.delta(2).added == frozenset({g_to_f})

    def test_f_has_no_out_neighbors_after_delete(self):
        # Example 3's premise.
        snapshot = example_temporal_graph().snapshot(1)
        assert snapshot.out_degree(node_id("F")) == 0

    def test_node_id_lookup(self):
        assert node_id("A") == 0
        assert node_id("H") == 7
        with pytest.raises(ValueError):
            node_id("Z")
