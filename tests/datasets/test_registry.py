"""Tests for the dataset registry and synthetic stand-ins."""

import pytest

from repro.datasets.registry import (
    DATASETS,
    dataset_names,
    load_dataset,
    load_static_dataset,
)
from repro.errors import DatasetError


class TestRegistry:
    def test_all_five_paper_datasets_registered(self):
        assert dataset_names() == [
            "as733",
            "as_caida",
            "wiki_vote",
            "hepth",
            "hepph",
        ]

    def test_paper_statistics_recorded(self):
        spec = DATASETS["wiki_vote"]
        assert spec.paper_nodes == 7115
        assert spec.paper_edges == 103689
        assert spec.paper_snapshots == 100
        assert spec.directed

    def test_directedness_matches_table3(self):
        assert not DATASETS["as733"].directed
        assert DATASETS["as_caida"].directed
        assert not DATASETS["hepth"].directed
        assert DATASETS["hepph"].directed

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("enron")
        with pytest.raises(DatasetError):
            load_static_dataset("enron")


class TestGeneration:
    @pytest.mark.parametrize("name", dataset_names())
    def test_generates_with_matching_shape(self, name):
        spec = DATASETS[name]
        temporal = load_dataset(name, scale=0.02, num_snapshots=4, seed=0)
        assert temporal.directed == spec.directed
        assert temporal.num_snapshots == 4
        assert temporal.num_nodes == spec.scaled_nodes(0.02)
        assert temporal.name == name

    def test_scale_controls_size(self):
        small = load_static_dataset("hepth", scale=0.02, seed=0)
        large = load_static_dataset("hepth", scale=0.05, seed=0)
        assert large.num_nodes > small.num_nodes

    def test_deterministic_for_seed(self):
        a = load_static_dataset("wiki_vote", scale=0.02, seed=3)
        b = load_static_dataset("wiki_vote", scale=0.02, seed=3)
        assert a.same_structure(b)
        c = load_static_dataset("wiki_vote", scale=0.02, seed=4)
        assert not a.same_structure(c)

    def test_growing_datasets_accrete(self):
        temporal = load_dataset("as733", scale=0.02, num_snapshots=6, seed=0)
        counts = temporal.edge_counts()
        assert counts == sorted(counts)

    def test_churn_datasets_stay_stable(self):
        temporal = load_dataset("hepth", scale=0.02, num_snapshots=6, seed=0)
        counts = temporal.edge_counts()
        assert max(counts) - min(counts) <= max(counts) // 5

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            load_dataset("as733", scale=0.0)
        with pytest.raises(DatasetError):
            load_dataset("as733", scale=1.5)

    def test_invalid_snapshots(self):
        with pytest.raises(DatasetError):
            load_dataset("as733", scale=0.02, num_snapshots=0)

    def test_default_snapshots_follow_paper(self):
        temporal = load_dataset("hepth", scale=0.02, seed=0)
        assert temporal.num_snapshots == 100
