"""Deterministic Zipf power-law generator and the pinned bench fixture."""

import hashlib

import numpy as np
import pytest

from repro.datasets.powerlaw import (
    POWERLAW_FIXTURE_SEED,
    powerlaw_fixture,
    zipf_powerlaw,
)
from repro.errors import GraphError

# sha256 over the in-CSR arrays of zipf_powerlaw(2000, 8000, seed=1207).
# Any drift in the sampling or dedup logic changes these bytes — and would
# silently invalidate the recorded adaptive perf baselines.
PINNED_SMALL_SHA = (
    "052beb6acab157b00ac954815797e1739e99cb1f00cd560fc66b521a16b51f9c"
)


def csr_sha(graph) -> str:
    digest = hashlib.sha256()
    digest.update(graph.in_indptr.tobytes())
    digest.update(graph.in_indices.tobytes())
    return digest.hexdigest()


class TestZipfPowerlaw:
    def test_pinned_bytes(self):
        graph = zipf_powerlaw(2000, 8000, seed=POWERLAW_FIXTURE_SEED)
        assert csr_sha(graph) == PINNED_SMALL_SHA

    def test_deterministic_per_seed(self):
        a = zipf_powerlaw(500, 2000, seed=3)
        b = zipf_powerlaw(500, 2000, seed=3)
        c = zipf_powerlaw(500, 2000, seed=4)
        assert csr_sha(a) == csr_sha(b)
        assert csr_sha(a) != csr_sha(c)

    def test_heavy_head_on_both_sides(self):
        # Node 0 is the Zipf head: it must dominate both degree columns,
        # which is what makes the in-degree hubs also the walk landing
        # spots the hub cache banks on.
        graph = zipf_powerlaw(1000, 10_000, seed=9)
        in_deg = graph.in_degrees()
        out_deg = graph.out_degrees()
        assert in_deg[0] == in_deg.max()
        assert out_deg[0] == out_deg.max()
        top = np.sort(in_deg)[-64:].sum()
        assert top / graph.num_edges > 0.2

    def test_no_self_loops_and_no_duplicates(self):
        graph = zipf_powerlaw(200, 3000, seed=5)
        edges = np.array(list(graph.edges()))
        assert np.all(edges[:, 0] != edges[:, 1])
        keys = edges[:, 0] * 200 + edges[:, 1]
        assert np.unique(keys).size == keys.size

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 1, "num_edges": 5},
            {"num_nodes": 10, "num_edges": 0},
            {"num_nodes": 10, "num_edges": 5, "exponent": 0.0},
        ],
    )
    def test_invalid_arguments(self, kwargs):
        with pytest.raises(GraphError):
            zipf_powerlaw(**kwargs)


class TestFixture:
    def test_cached_per_process(self):
        # Small shape so the test stays cheap; the cache key includes it.
        assert powerlaw_fixture(300, 900) is powerlaw_fixture(300, 900)

    def test_matches_generator_at_pinned_seed(self):
        fixture = powerlaw_fixture(300, 900)
        regen = zipf_powerlaw(300, 900, seed=POWERLAW_FIXTURE_SEED)
        assert csr_sha(fixture) == csr_sha(regen)
