"""Shared fixtures: small graphs with known structure, seeded RNGs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.example_graph import example_graph, example_temporal_graph
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi, preferential_attachment


@pytest.fixture
def paper_graph() -> DiGraph:
    """The 8-node running-example graph of the paper's Fig. 2."""
    return example_graph()


@pytest.fixture
def paper_temporal():
    """The 3-snapshot temporal example of the paper's Fig. 1."""
    return example_temporal_graph()


@pytest.fixture
def tiny_pair_graph() -> DiGraph:
    """Three nodes: 0 and 1 share the single in-neighbour 2, so
    ``sim(0, 1) = c`` exactly (both reverse walks step to 2 and meet)."""
    return DiGraph.from_edges(3, [(2, 0), (2, 1)], directed=True)


@pytest.fixture
def chain_graph() -> DiGraph:
    """Directed chain 0 <- 1 <- 2 <- 3 (edges point left): a cycle-free
    graph on which the queue and level revReach variants must agree."""
    return DiGraph.from_edges(4, [(1, 0), (2, 1), (3, 2)], directed=True)


@pytest.fixture
def small_random_graph() -> DiGraph:
    """A 60-node preferential-attachment digraph, fixed seed."""
    return preferential_attachment(60, 3, directed=True, seed=42)


@pytest.fixture
def small_undirected_graph() -> DiGraph:
    """A 50-node undirected preferential-attachment graph, fixed seed."""
    return preferential_attachment(50, 2, directed=False, seed=7)


@pytest.fixture
def medium_random_graph() -> DiGraph:
    """A 300-node graph for statistical accuracy tests."""
    return preferential_attachment(300, 3, directed=True, seed=11)


@pytest.fixture
def dangling_graph() -> DiGraph:
    """Graph with nodes that have no in-neighbours (reverse walks die)."""
    return DiGraph.from_edges(5, [(0, 1), (2, 1), (3, 4)], directed=True)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
