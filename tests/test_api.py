"""Tests for the high-level facade (single_source / single_pair)."""

import numpy as np
import pytest

from repro.api import SINGLE_SOURCE_METHODS, single_pair, single_source
from repro.baselines.power_method import power_method_all_pairs
from repro.errors import ParameterError


class TestSingleSource:
    @pytest.mark.parametrize("method", SINGLE_SOURCE_METHODS)
    def test_every_method_returns_valid_vector(self, paper_graph, method):
        scores = single_source(
            paper_graph, 0, method=method, n_r=200, seed=1
        )
        assert scores.shape == (paper_graph.num_nodes,)
        assert scores[0] == pytest.approx(1.0)
        assert scores.min() >= 0.0
        assert scores.max() <= 1.0 + 1e-12

    def test_methods_agree_with_exact(self, tiny_pair_graph):
        exact = single_source(tiny_pair_graph, 0, method="exact")
        for method in ("crashsim", "probesim", "naive-mc"):
            scores = single_source(
                tiny_pair_graph, 0, method=method, n_r=3000, seed=2
            )
            assert np.abs(scores - exact).max() < 0.05, method

    def test_unknown_method(self, paper_graph):
        with pytest.raises(ParameterError):
            single_source(paper_graph, 0, method="oracle")


class TestSinglePair:
    def test_identity(self, paper_graph):
        assert single_pair(paper_graph, 3, 3) == 1.0

    def test_exact_method(self, tiny_pair_graph):
        assert single_pair(
            tiny_pair_graph, 0, 1, method="exact", c=0.42
        ) == pytest.approx(0.42, abs=1e-9)

    def test_monte_carlo_matches_exact(self, medium_random_graph):
        truth = power_method_all_pairs(medium_random_graph, 0.6)
        pairs = [(0, 1), (3, 17), (5, 40)]
        for u, v in pairs:
            estimate = single_pair(
                medium_random_graph, u, v, num_samples=20000, seed=4
            )
            assert estimate == pytest.approx(truth[u, v], abs=0.02), (u, v)

    def test_symmetric_in_distribution(self, small_random_graph):
        forward = single_pair(small_random_graph, 2, 9, num_samples=30000, seed=5)
        backward = single_pair(small_random_graph, 9, 2, num_samples=30000, seed=6)
        assert forward == pytest.approx(backward, abs=0.02)

    def test_validation(self, paper_graph):
        with pytest.raises(ParameterError):
            single_pair(paper_graph, 0, 99)
        with pytest.raises(ParameterError):
            single_pair(paper_graph, 0, 1, method="guess")
        with pytest.raises(ParameterError):
            single_pair(paper_graph, 0, 1, num_samples=0)
