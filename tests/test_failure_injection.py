"""Failure injection: degenerate inputs and chaos every layer must survive.

DESIGN.md §6 commits to: empty graphs, dead-end nodes, isolated sources,
single-snapshot intervals, Ω = ∅, and deltas touching missing nodes.

The chaos suite (``TestChaos*``) exercises the resilience layer of
docs/internals.md §9 with :mod:`repro.faults`: worker processes killed
mid-query, shards stalled past a deadline, in-shard exceptions, and
mid-push failures in the streaming session — asserting recovery is
bit-exact, degradation is honestly labelled, and the inverted Lemma-3
``achieved_epsilon`` empirically bounds the error against the Power
Method ground truth.
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro import faults
from repro.api import single_source
from repro.baselines.power_method import power_method_all_pairs
from repro.baselines.probesim import probesim
from repro.baselines.reads import ReadsIndex
from repro.baselines.sling import SlingIndex
from repro.core.crashsim import crashsim
from repro.core.crashsim_t import crashsim_t
from repro.core.params import CrashSimParams
from repro.core.queries import ThresholdQuery, TrendQuery
from repro.core.revreach import revreach_levels
from repro.core.streaming import TemporalQuerySession
from repro.errors import (
    DeadlineExceededError,
    DegradedResultWarning,
    TemporalError,
)
from repro.faults import InjectedFault
from repro.graph.digraph import DiGraph
from repro.graph.generators import evolve_snapshots, preferential_attachment
from repro.graph.temporal import EdgeDelta, TemporalGraphBuilder
from repro.parallel import (
    ParallelExecutor,
    parallel_crashsim,
    parallel_crashsim_t,
)

PARAMS = CrashSimParams(c=0.6, epsilon=0.1, n_r_override=20)


@pytest.fixture
def edgeless_graph():
    return DiGraph.from_edges(4, [])


class TestEdgelessGraph:
    def test_crashsim_all_zero(self, edgeless_graph):
        result = crashsim(edgeless_graph, 0, params=PARAMS, seed=1)
        assert np.all(result.scores == 0.0)

    def test_power_method_identity(self, edgeless_graph):
        sim = power_method_all_pairs(edgeless_graph, 0.6)
        assert np.array_equal(sim, np.eye(4))

    def test_probesim_all_zero(self, edgeless_graph):
        scores = probesim(edgeless_graph, 0, n_r=10, seed=2)
        assert scores[0] == 1.0
        assert np.all(scores[1:] == 0.0)

    def test_sling_index_and_query(self, edgeless_graph):
        index = SlingIndex(edgeless_graph, num_d_samples=5, seed=3)
        scores = index.query(0)
        assert scores[0] == 1.0
        assert np.all(scores[1:] == 0.0)

    def test_reads_index_and_query(self, edgeless_graph):
        index = ReadsIndex(edgeless_graph, r=5, seed=4)
        scores = index.query(0)
        assert np.all(scores[1:] == 0.0)

    def test_revreach_root_only(self, edgeless_graph):
        tree = revreach_levels(edgeless_graph, 2, 5, 0.6)
        assert tree.total_mass(0) == 1.0
        assert tree.matrix[1:].sum() == 0.0

    @pytest.mark.parametrize(
        "method", ["crashsim", "probesim", "naive-mc", "exact"]
    )
    def test_facade_methods(self, edgeless_graph, method):
        scores = single_source(edgeless_graph, 1, method=method, n_r=10, seed=5)
        assert scores[1] == 1.0


class TestIsolatedSource:
    def test_crashsim_isolated_source(self, dangling_graph):
        # Node 0 has no in-neighbours: sim(0, v) = 0 for every v.
        result = crashsim(dangling_graph, 0, params=PARAMS, seed=1)
        assert np.all(result.scores == 0.0)

    def test_temporal_query_isolated_source(self):
        builder = TemporalGraphBuilder(4, directed=True)
        builder.push_snapshot([(1, 2)])
        builder.push_snapshot([(1, 3)])
        temporal = builder.build()
        result = crashsim_t(
            temporal, 0, ThresholdQuery(theta=0.01), params=PARAMS, seed=2
        )
        assert result.survivors == ()


class TestSingleSnapshotInterval:
    def test_threshold_over_one_snapshot(self, paper_temporal):
        result = crashsim_t(
            paper_temporal,
            0,
            ThresholdQuery(theta=0.0),
            interval=(0, 1),
            params=CrashSimParams(c=0.6, epsilon=0.1, n_r_override=300),
            seed=3,
        )
        assert result.stats.snapshots_processed == 1
        assert len(result.history) == 1

    def test_trend_over_one_snapshot_keeps_everyone(self, paper_temporal):
        result = crashsim_t(
            paper_temporal,
            0,
            TrendQuery(),
            interval=(1, 2),
            params=PARAMS,
            seed=4,
        )
        # A trend needs two observations; one snapshot filters nothing.
        assert len(result.survivors) == paper_temporal.num_nodes - 1


class TestDegenerateCandidates:
    def test_empty_omega(self, paper_graph):
        result = crashsim(paper_graph, 0, candidates=[], params=PARAMS)
        assert result.scores.size == 0
        assert result.top_k(3) == []

    def test_omega_of_only_dangling_nodes(self, dangling_graph):
        result = crashsim(
            dangling_graph, 1, candidates=[0, 2, 3], params=PARAMS, seed=5
        )
        assert np.all(result.scores == 0.0)

    def test_omega_of_only_the_source(self, paper_graph):
        result = crashsim(paper_graph, 4, candidates=[4], params=PARAMS)
        assert result.score(4) == 1.0


class TestBadDeltas:
    def test_delta_removing_missing_edge_rejected(self):
        delta = EdgeDelta(added=frozenset(), removed=frozenset({(0, 1)}))
        with pytest.raises(TemporalError):
            delta.apply(set())

    def test_builder_rejects_out_of_range_delta(self):
        builder = TemporalGraphBuilder(3)
        builder.push_snapshot([(0, 1)])
        with pytest.raises(TemporalError):
            builder.push_delta(added=[(0, 7)])

    def test_reads_delta_on_nodes_without_edges(self):
        # Applying a delta whose head had no in-edges before must not crash.
        graph = DiGraph.from_edges(3, [])
        index = ReadsIndex(graph, r=5, seed=6)
        new_graph = DiGraph.from_edges(3, [(0, 2)])
        index.apply_delta(new_graph, added=[(0, 2)])
        assert np.all(np.isin(index.pointers[:, 2], [0]))


class TestSingleNodeGraph:
    def test_crashsim(self):
        graph = DiGraph.from_edges(1, [])
        result = crashsim(graph, 0, params=PARAMS)
        assert result.candidates.size == 0

    def test_power_method(self):
        sim = power_method_all_pairs(DiGraph.from_edges(1, []), 0.6)
        assert sim.tolist() == [[1.0]]


# ---------------------------------------------------------------------------
# Chaos suite: injected crashes, stalls, and deadlines (docs/internals.md §9)
# ---------------------------------------------------------------------------

FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "seed_behaviour.json"
PARAMS64 = CrashSimParams(n_r_override=64)
# The chaos plans name shard indices from the legacy 16-shard layout (4
# trials per shard), so every sharded run below pins shards=16 explicitly —
# the autotuned plan would collapse this small query to a single shard.


def to_hex(values):
    return [float.hex(float(v)) for v in values]


@pytest.fixture(scope="module")
def pinned():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def chaos_graph():
    # Same graph + params + seed as tests/test_seed_behaviour.py, so the
    # pinned fixture bits double as the "undisturbed run" reference here.
    return preferential_attachment(120, 3, directed=True, seed=5)


@pytest.fixture(scope="module")
def ground_truth(chaos_graph):
    return power_method_all_pairs(chaos_graph, PARAMS64.c)[0]


@pytest.fixture(scope="module")
def pool_available():
    probe = ParallelExecutor(2)
    serial = probe.serial
    probe.close()
    if serial:
        pytest.skip("process pools unavailable on this platform")


def _assert_bound_holds(result, ground_truth):
    """The inverted Lemma-3 bound must cover the actual max error."""
    assert result.achieved_epsilon is not None
    assert 0.0 < result.achieved_epsilon <= 1.0
    errors = np.abs(result.scores - ground_truth[result.candidates])
    assert float(errors.max()) <= result.achieved_epsilon


class TestChaosStatic:
    def test_worker_kill_recovers_bit_identical(
        self, pinned, chaos_graph, pool_available
    ):
        # One worker is SIGKILLed the first time shard 3 starts; the pool
        # is rebuilt, the shard retried with its own seed, and the final
        # scores match the pinned undisturbed bits exactly.
        with faults.active({"shard": {"3": {"kind": "kill"}}}) as markers:
            result = parallel_crashsim(
                chaos_graph, 0, params=PARAMS64, seed=123, workers=2,
                shards=16,
            )
            assert (pathlib.Path(markers) / "shard-3-0").exists()
        assert not result.degraded
        assert result.trials_completed == result.n_r
        assert result.candidates.tolist() == pinned["parallel_w1"]["candidates"]
        assert to_hex(result.scores) == pinned["parallel_w1"]["scores"]

    def test_in_shard_exception_retried_to_full_quality(
        self, pinned, chaos_graph, pool_available
    ):
        # Shard 5 raises twice, succeeds on the third attempt (within the
        # default retry budget): full-quality, bit-identical result.
        plan = {"shard": {"5": {"kind": "raise", "times": 2}}}
        with faults.active(plan):
            result = parallel_crashsim(
                chaos_graph, 0, params=PARAMS64, seed=123, workers=2,
                shards=16,
            )
        assert not result.degraded
        assert to_hex(result.scores) == pinned["parallel_w1"]["scores"]

    def test_persistent_shard_failure_degrades(
        self, chaos_graph, ground_truth, pool_available
    ):
        # Shard 5 fails every attempt: its 4 trials are lost, the run is
        # flagged degraded, and the widened bound still covers the error.
        plan = {"shard": {"5": {"kind": "raise", "times": 32}}}
        with faults.active(plan):
            with pytest.warns(DegradedResultWarning):
                result = parallel_crashsim(
                    chaos_graph, 0, params=PARAMS64, seed=123, workers=2,
                    shards=16,
                )
        assert result.degraded
        assert result.trials_completed == 60  # 64 trials over 16 shards
        assert result.achieved_epsilon > PARAMS64.achieved_epsilon(
            chaos_graph.num_nodes, 64
        )
        _assert_bound_holds(result, ground_truth)

    def test_deadline_with_stalled_shard_degrades(
        self, chaos_graph, ground_truth, pool_available
    ):
        # Shard 2 sleeps far past the deadline; the query returns at the
        # deadline with the other shards averaged, not after the stall.
        plan = {"shard": {"2": {"kind": "delay", "seconds": 10}}}
        with faults.active(plan):
            started = time.monotonic()
            with pytest.warns(DegradedResultWarning):
                result = parallel_crashsim(
                    chaos_graph,
                    0,
                    params=PARAMS64,
                    seed=123,
                    workers=2,
                    deadline=4.0,
                    shards=16,
                )
            elapsed = time.monotonic() - started
        assert elapsed < 9.0
        assert result.degraded
        assert 0 < result.trials_completed < result.n_r
        _assert_bound_holds(result, ground_truth)

    def test_single_source_kill_plan_respects_deadline(
        self, chaos_graph, ground_truth, pool_available
    ):
        # The facade acceptance path: a shard that kills its worker on
        # every attempt exhausts the retry/rebuild budgets, and
        # single_source(..., deadline=...) still returns inside the budget
        # with an honestly-labelled ScoreVector.
        plan = {"shard": {"15": {"kind": "kill", "times": 32}}}
        with faults.active(plan):
            started = time.monotonic()
            with pytest.warns(DegradedResultWarning):
                scores = single_source(
                    chaos_graph,
                    0,
                    n_r=64,
                    seed=123,
                    workers=2,
                    deadline=30.0,
                    shards=16,
                )
            elapsed = time.monotonic() - started
        assert elapsed < 30.0
        assert scores.degraded
        assert 0 < scores.trials_completed < 64
        assert 0.0 < scores.achieved_epsilon <= 1.0
        assert float(np.abs(scores - ground_truth).max()) <= scores.achieved_epsilon

    def test_serial_deadline_is_cooperative(self, chaos_graph, ground_truth):
        # workers=1 never starts a pool; the deadline is checked between
        # shards, so a stalled first shard still yields a partial result.
        plan = {"shard": {"0": {"kind": "delay", "seconds": 1.2}}}
        with faults.active(plan):
            with pytest.warns(DegradedResultWarning):
                result = parallel_crashsim(
                    chaos_graph,
                    0,
                    params=PARAMS64,
                    seed=123,
                    workers=1,
                    deadline=1.0,
                    shards=16,
                )
        assert result.degraded
        assert result.trials_completed == 4  # only shard 0 completed
        _assert_bound_holds(result, ground_truth)

    def test_deadline_spent_in_setup_raises(self, chaos_graph):
        with pytest.raises(DeadlineExceededError) as excinfo:
            parallel_crashsim(
                chaos_graph, 0, params=PARAMS64, seed=123, workers=1,
                deadline=1e-6,
            )
        assert excinfo.value.deadline == 1e-6
        assert excinfo.value.elapsed >= 1e-6


class TestChaosTemporal:
    QUERY = ThresholdQuery(theta=0.001)

    def _temporal(self, chaos_graph):
        return evolve_snapshots(chaos_graph, 6, churn_rate=0.01, seed=9)

    def test_snapshot_kill_recovers_bit_identical(
        self, chaos_graph, pool_available
    ):
        temporal = self._temporal(chaos_graph)
        clean = parallel_crashsim_t(
            temporal, 0, self.QUERY, params=PARAMS64, seed=77, workers=2
        )
        with faults.active({"snapshot": {"2": {"kind": "kill"}}}):
            chaotic = parallel_crashsim_t(
                temporal, 0, self.QUERY, params=PARAMS64, seed=77, workers=2
            )
        assert not chaotic.degraded
        assert chaotic.survivors == clean.survivors
        assert chaotic.history == clean.history

    def test_snapshot_stall_truncates_to_prefix(
        self, chaos_graph, pool_available
    ):
        temporal = self._temporal(chaos_graph)
        clean = parallel_crashsim_t(
            temporal, 0, self.QUERY, params=PARAMS64, seed=77, workers=2
        )
        plan = {"snapshot": {"3": {"kind": "delay", "seconds": 10}}}
        with faults.active(plan):
            with pytest.warns(DegradedResultWarning):
                result = parallel_crashsim_t(
                    temporal,
                    0,
                    self.QUERY,
                    params=PARAMS64,
                    seed=77,
                    workers=2,
                    deadline=4.0,
                )
        assert result.degraded
        # Only the completed snapshot prefix [0, 3) is usable; every
        # replayed transition matches the clean run bit-for-bit.
        assert 1 <= len(result.history) <= 3
        assert result.history == clean.history[: len(result.history)]
        assert result.stats.snapshots_processed == len(result.history)


class TestSessionRollback:
    def test_mid_push_failure_rolls_back_and_retry_is_bit_exact(
        self, chaos_graph
    ):
        temporal = evolve_snapshots(chaos_graph, 3, churn_rate=0.05, seed=9)
        snapshots = [temporal.snapshot(i) for i in range(3)]
        query = ThresholdQuery(theta=0.001)

        control = TemporalQuerySession(0, query, params=PARAMS64, seed=7)
        for graph in snapshots:
            control.push_snapshot(graph)

        session = TemporalQuerySession(0, query, params=PARAMS64, seed=7)
        session.push_snapshot(snapshots[0])
        before = (session.survivors, session.scores, session.snapshots_seen)
        assert before[0], "chaos setup: Ω must be non-empty after snapshot 0"

        with faults.active({"advance": {"2": {"kind": "raise"}}}):
            with pytest.raises(InjectedFault):
                session.push_snapshot(snapshots[1])
            # The failed push left no trace: same Ω, scores, counter.
            assert (
                session.survivors,
                session.scores,
                session.snapshots_seen,
            ) == before
            # The fault is spent (times=1), so the retry succeeds — still
            # inside the plan — and, thanks to the RNG rollback, lands on
            # the exact bits an undisturbed session produces.
            session.push_snapshot(snapshots[1])
        session.push_snapshot(snapshots[2])

        assert session.survivors == control.survivors
        assert {
            node: float.hex(score) for node, score in session.scores.items()
        } == {
            node: float.hex(score) for node, score in control.scores.items()
        }
