"""Failure injection: degenerate inputs every layer must survive.

DESIGN.md §6 commits to: empty graphs, dead-end nodes, isolated sources,
single-snapshot intervals, Ω = ∅, and deltas touching missing nodes.
"""

import numpy as np
import pytest

from repro.api import single_source
from repro.baselines.power_method import power_method_all_pairs
from repro.baselines.probesim import probesim
from repro.baselines.reads import ReadsIndex
from repro.baselines.sling import SlingIndex
from repro.core.crashsim import crashsim
from repro.core.crashsim_t import crashsim_t
from repro.core.params import CrashSimParams
from repro.core.queries import ThresholdQuery, TrendQuery
from repro.core.revreach import revreach_levels
from repro.errors import TemporalError
from repro.graph.digraph import DiGraph
from repro.graph.temporal import EdgeDelta, TemporalGraphBuilder

PARAMS = CrashSimParams(c=0.6, epsilon=0.1, n_r_override=20)


@pytest.fixture
def edgeless_graph():
    return DiGraph.from_edges(4, [])


class TestEdgelessGraph:
    def test_crashsim_all_zero(self, edgeless_graph):
        result = crashsim(edgeless_graph, 0, params=PARAMS, seed=1)
        assert np.all(result.scores == 0.0)

    def test_power_method_identity(self, edgeless_graph):
        sim = power_method_all_pairs(edgeless_graph, 0.6)
        assert np.array_equal(sim, np.eye(4))

    def test_probesim_all_zero(self, edgeless_graph):
        scores = probesim(edgeless_graph, 0, n_r=10, seed=2)
        assert scores[0] == 1.0
        assert np.all(scores[1:] == 0.0)

    def test_sling_index_and_query(self, edgeless_graph):
        index = SlingIndex(edgeless_graph, num_d_samples=5, seed=3)
        scores = index.query(0)
        assert scores[0] == 1.0
        assert np.all(scores[1:] == 0.0)

    def test_reads_index_and_query(self, edgeless_graph):
        index = ReadsIndex(edgeless_graph, r=5, seed=4)
        scores = index.query(0)
        assert np.all(scores[1:] == 0.0)

    def test_revreach_root_only(self, edgeless_graph):
        tree = revreach_levels(edgeless_graph, 2, 5, 0.6)
        assert tree.total_mass(0) == 1.0
        assert tree.matrix[1:].sum() == 0.0

    @pytest.mark.parametrize(
        "method", ["crashsim", "probesim", "naive-mc", "exact"]
    )
    def test_facade_methods(self, edgeless_graph, method):
        scores = single_source(edgeless_graph, 1, method=method, n_r=10, seed=5)
        assert scores[1] == 1.0


class TestIsolatedSource:
    def test_crashsim_isolated_source(self, dangling_graph):
        # Node 0 has no in-neighbours: sim(0, v) = 0 for every v.
        result = crashsim(dangling_graph, 0, params=PARAMS, seed=1)
        assert np.all(result.scores == 0.0)

    def test_temporal_query_isolated_source(self):
        builder = TemporalGraphBuilder(4, directed=True)
        builder.push_snapshot([(1, 2)])
        builder.push_snapshot([(1, 3)])
        temporal = builder.build()
        result = crashsim_t(
            temporal, 0, ThresholdQuery(theta=0.01), params=PARAMS, seed=2
        )
        assert result.survivors == ()


class TestSingleSnapshotInterval:
    def test_threshold_over_one_snapshot(self, paper_temporal):
        result = crashsim_t(
            paper_temporal,
            0,
            ThresholdQuery(theta=0.0),
            interval=(0, 1),
            params=CrashSimParams(c=0.6, epsilon=0.1, n_r_override=300),
            seed=3,
        )
        assert result.stats.snapshots_processed == 1
        assert len(result.history) == 1

    def test_trend_over_one_snapshot_keeps_everyone(self, paper_temporal):
        result = crashsim_t(
            paper_temporal,
            0,
            TrendQuery(),
            interval=(1, 2),
            params=PARAMS,
            seed=4,
        )
        # A trend needs two observations; one snapshot filters nothing.
        assert len(result.survivors) == paper_temporal.num_nodes - 1


class TestDegenerateCandidates:
    def test_empty_omega(self, paper_graph):
        result = crashsim(paper_graph, 0, candidates=[], params=PARAMS)
        assert result.scores.size == 0
        assert result.top_k(3) == []

    def test_omega_of_only_dangling_nodes(self, dangling_graph):
        result = crashsim(
            dangling_graph, 1, candidates=[0, 2, 3], params=PARAMS, seed=5
        )
        assert np.all(result.scores == 0.0)

    def test_omega_of_only_the_source(self, paper_graph):
        result = crashsim(paper_graph, 4, candidates=[4], params=PARAMS)
        assert result.score(4) == 1.0


class TestBadDeltas:
    def test_delta_removing_missing_edge_rejected(self):
        delta = EdgeDelta(added=frozenset(), removed=frozenset({(0, 1)}))
        with pytest.raises(TemporalError):
            delta.apply(set())

    def test_builder_rejects_out_of_range_delta(self):
        builder = TemporalGraphBuilder(3)
        builder.push_snapshot([(0, 1)])
        with pytest.raises(TemporalError):
            builder.push_delta(added=[(0, 7)])

    def test_reads_delta_on_nodes_without_edges(self):
        # Applying a delta whose head had no in-edges before must not crash.
        graph = DiGraph.from_edges(3, [])
        index = ReadsIndex(graph, r=5, seed=6)
        new_graph = DiGraph.from_edges(3, [(0, 2)])
        index.apply_delta(new_graph, added=[(0, 2)])
        assert np.all(np.isin(index.pointers[:, 2], [0]))


class TestSingleNodeGraph:
    def test_crashsim(self):
        graph = DiGraph.from_edges(1, [])
        result = crashsim(graph, 0, params=PARAMS)
        assert result.candidates.size == 0

    def test_power_method(self):
        sim = power_method_all_pairs(DiGraph.from_edges(1, []), 0.6)
        assert sim.tolist() == [[1.0]]
