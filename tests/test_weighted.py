"""Weighted SimRank across the stack (extension feature).

Weighted semantics: a reverse √c-walk at ``u`` steps to in-neighbour ``x``
with probability ``w(x, u) / W(u)``.  The weighted SimRank fixed point is
the natural generalisation and must be agreed on by the Power Method,
CrashSim, ProbeSim, and SLING; unit weights must reproduce the unweighted
results exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import single_pair
from repro.baselines.naive_mc import naive_monte_carlo
from repro.baselines.power_method import power_method_all_pairs
from repro.baselines.probesim import probesim
from repro.baselines.reads import ReadsIndex
from repro.baselines.sling import SlingIndex, exact_d_small_graph
from repro.core.crashsim import crashsim
from repro.core.params import CrashSimParams
from repro.core.revreach import revreach_levels, revreach_queue
from repro.errors import GraphError, ParameterError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.graph.generators import preferential_attachment
from repro.graph.io import read_edge_list, write_edge_list
from repro.rng import ensure_rng
from repro.walks.engine import BatchWalkStepper
from repro.walks.sqrt_c import sample_sqrt_c_walk


@pytest.fixture
def skewed_pair_graph() -> DiGraph:
    """``I(0) = {2 (w=3), 3 (w=1)}``, ``I(1) = {2 (w=1)}``:
    weighted sim(0, 1) = c · 3/4 (walks meet at 2 with probability 3/4)."""
    return DiGraph.from_edges(
        4,
        [(2, 0), (3, 0), (2, 1)],
        weights=[3.0, 1.0, 1.0],
    )


def random_weighted(num_nodes=60, seed=0):
    base = preferential_attachment(num_nodes, 3, directed=True, seed=seed)
    rng = ensure_rng(seed + 1)
    arcs = list(base.edges())
    weights = rng.uniform(0.5, 4.0, size=len(arcs))
    return DiGraph.from_edges(num_nodes, arcs, weights=weights)


class TestGraphLayer:
    def test_is_weighted_flag(self, skewed_pair_graph, paper_graph):
        assert skewed_pair_graph.is_weighted
        assert not paper_graph.is_weighted

    def test_edge_weight_lookup(self, skewed_pair_graph):
        assert skewed_pair_graph.edge_weight(2, 0) == 3.0
        assert skewed_pair_graph.edge_weight(3, 0) == 1.0

    def test_edge_weight_unweighted_is_one(self, paper_graph):
        assert paper_graph.edge_weight(1, 0) == 1.0

    def test_in_weight_totals(self, skewed_pair_graph):
        totals = skewed_pair_graph.in_weight_totals()
        assert totals[0] == 4.0
        assert totals[1] == 1.0
        assert totals[2] == 0.0

    def test_transition_matrix_weighted(self, skewed_pair_graph):
        matrix = skewed_pair_graph.reverse_transition_matrix().toarray()
        assert matrix[0, 2] == pytest.approx(0.75)
        assert matrix[0, 3] == pytest.approx(0.25)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(GraphError):
            DiGraph.from_edges(2, [(0, 1)], weights=[0.0])
        with pytest.raises(GraphError):
            DiGraph.from_edges(2, [(0, 1)], weights=[-1.0])

    def test_weight_count_mismatch_rejected(self):
        with pytest.raises(GraphError):
            DiGraph.from_edges(3, [(0, 1), (1, 2)], weights=[1.0])

    def test_weights_access_on_unweighted_rejected(self, paper_graph):
        with pytest.raises(GraphError):
            _ = paper_graph.in_weights


class TestBuilder:
    def test_weighted_builder_round_trip(self):
        builder = GraphBuilder(directed=True, weighted=True)
        builder.add_edge("a", "b", 2.5)
        builder.add_weighted_edges([("c", "b", 0.5)])
        graph = builder.build()
        assert graph.is_weighted
        a, b, c = (builder.node_id(x) for x in "abc")
        assert graph.edge_weight(a, b) == 2.5
        assert graph.edge_weight(c, b) == 0.5

    def test_re_add_updates_weight(self):
        builder = GraphBuilder(weighted=True)
        builder.add_edge(0, 1, 1.0)
        builder.add_edge(0, 1, 7.0)
        assert builder.build().edge_weight(0, 1) == 7.0

    def test_undirected_weight_mirrored(self):
        builder = GraphBuilder(directed=False, weighted=True)
        builder.add_edge(0, 1, 3.0)
        graph = builder.build()
        assert graph.edge_weight(0, 1) == 3.0
        assert graph.edge_weight(1, 0) == 3.0

    def test_invalid_weight_rejected(self):
        builder = GraphBuilder(weighted=True)
        with pytest.raises(GraphError):
            builder.add_edge(0, 1, 0.0)

    def test_from_graph_preserves_weights(self, skewed_pair_graph):
        rebuilt = GraphBuilder.from_graph(skewed_pair_graph).build()
        assert rebuilt.is_weighted
        assert rebuilt.edge_weight(2, 0) == 3.0


class TestWalks:
    def test_scalar_walk_respects_weights(self, skewed_pair_graph, rng):
        picks = [
            sample_sqrt_c_walk(skewed_pair_graph, 0, 0.99, max_length=1, seed=rng)
            for _ in range(4000)
        ]
        steps = [path[1] for path in picks if len(path) > 1]
        fraction_heavy = steps.count(2) / len(steps)
        assert fraction_heavy == pytest.approx(0.75, abs=0.03)

    def test_batch_walk_respects_weights(self, skewed_pair_graph, rng):
        stepper = BatchWalkStepper(skewed_pair_graph, 0.99)
        starts = np.zeros(40000, dtype=np.int64)
        first = next(iter(stepper.walk(starts, 1, seed=rng)))
        fraction_heavy = float(np.mean(first.positions == 2))
        assert fraction_heavy == pytest.approx(0.75, abs=0.01)

    def test_batch_occupancy_matches_weighted_tree(self, rng):
        graph = random_weighted(20, seed=3)
        tree = revreach_levels(graph, 0, 2, 0.64)
        stepper = BatchWalkStepper(graph, 0.64)
        samples = 60000
        counts = np.zeros(graph.num_nodes)
        for batch in stepper.walk(
            np.zeros(samples, dtype=np.int64), 2, seed=rng
        ):
            if batch.step == 2:
                counts += np.bincount(batch.positions, minlength=graph.num_nodes)
        assert np.allclose(counts / samples, tree.matrix[2], atol=0.01)


class TestAlgorithmsAgree:
    def test_power_method_known_value(self, skewed_pair_graph):
        sim = power_method_all_pairs(skewed_pair_graph, 0.6)
        assert sim[0, 1] == pytest.approx(0.6 * 0.75, abs=1e-12)

    def test_crashsim_known_value(self, skewed_pair_graph):
        params = CrashSimParams(c=0.6, epsilon=0.05, n_r_override=5000)
        result = crashsim(skewed_pair_graph, 0, params=params, seed=1)
        assert result.score(1) == pytest.approx(0.45, abs=0.03)

    def test_probesim_known_value(self, skewed_pair_graph):
        scores = probesim(skewed_pair_graph, 0, n_r=5000, seed=2)
        assert scores[1] == pytest.approx(0.45, abs=0.03)

    def test_single_pair_known_value(self, skewed_pair_graph):
        value = single_pair(skewed_pair_graph, 0, 1, num_samples=20000, seed=3)
        assert value == pytest.approx(0.45, abs=0.02)

    def test_sling_exact_d_reproduces_weighted_simrank(self):
        graph = random_weighted(40, seed=5)
        truth = power_method_all_pairs(graph, 0.6)
        d = exact_d_small_graph(graph, 0.6, iterations=120)
        index = SlingIndex(graph, c=0.6, epsilon=0.001, d_values=d)
        scores = index.query(4)
        assert np.abs(truth[4] - scores).max() < 0.005

    def test_crashsim_matches_power_method_on_random_weighted(self):
        graph = random_weighted(80, seed=6)
        truth = power_method_all_pairs(graph, 0.6)
        params = CrashSimParams(c=0.6, epsilon=0.05, n_r_override=1500)
        result = crashsim(graph, 2, params=params, seed=7)
        estimate = np.zeros(graph.num_nodes)
        estimate[result.candidates] = result.scores
        estimate[2] = 1.0
        assert np.abs(truth[2] - estimate).max() < 0.06


class TestUnitWeightEquivalence:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_power_method_identical(self, seed):
        base = preferential_attachment(30, 2, directed=True, seed=seed % 1000)
        arcs = list(base.edges())
        weighted = DiGraph.from_edges(30, arcs, weights=[1.0] * len(arcs))
        assert np.allclose(
            power_method_all_pairs(base, 0.6),
            power_method_all_pairs(weighted, 0.6),
        )

    def test_revreach_identical(self, rng):
        base = preferential_attachment(30, 2, directed=True, seed=4)
        arcs = list(base.edges())
        weighted = DiGraph.from_edges(30, arcs, weights=[2.0] * len(arcs))
        # Uniform weights (any constant) give the uniform walk.
        for source in (0, 7):
            a = revreach_levels(base, source, 6, 0.6)
            b = revreach_levels(weighted, source, 6, 0.6)
            assert np.allclose(a.matrix, b.matrix)


class TestWeightedAxioms:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_weighted_simrank_symmetric_and_bounded(self, seed):
        graph = random_weighted(30, seed=seed % 200)
        sim = power_method_all_pairs(graph, 0.6, iterations=40)
        assert np.allclose(sim, sim.T)
        off_diagonal = sim[~np.eye(30, dtype=bool)]
        assert off_diagonal.min() >= 0.0
        assert off_diagonal.max() <= 0.6 + 1e-9

    def test_scaling_all_weights_is_invariant(self):
        """SimRank only sees weight *ratios*: scaling every weight by a
        constant must not change anything."""
        base = random_weighted(40, seed=3)
        arcs = list(base.edges())
        weights = [base.edge_weight(s, t) for s, t in arcs]
        scaled = DiGraph.from_edges(
            40, arcs, weights=[w * 7.5 for w in weights]
        )
        assert np.allclose(
            power_method_all_pairs(base, 0.6),
            power_method_all_pairs(scaled, 0.6),
        )


class TestUnsupportedCombinations:
    def test_paper_variant_rejected(self, skewed_pair_graph):
        with pytest.raises(ParameterError):
            revreach_levels(skewed_pair_graph, 0, 3, 0.6, variant="paper")
        with pytest.raises(ParameterError):
            revreach_queue(skewed_pair_graph, 0, 3, 0.6, variant="paper")

    def test_naive_mc_rejected(self, skewed_pair_graph):
        with pytest.raises(ParameterError):
            naive_monte_carlo(skewed_pair_graph, 0)

    def test_reads_rejected(self, skewed_pair_graph):
        with pytest.raises(ParameterError):
            ReadsIndex(skewed_pair_graph, r=5)


class TestWeightedIO:
    def test_round_trip(self, tmp_path, skewed_pair_graph):
        path = tmp_path / "weighted.txt"
        write_edge_list(skewed_pair_graph, path)
        loaded = read_edge_list(path, directed=True)
        assert loaded.is_weighted
        labels = {label: i for i, label in enumerate(loaded.node_labels)}
        assert loaded.edge_weight(labels["2"], labels["0"]) == 3.0

    def test_unweighted_files_stay_unweighted(self, tmp_path, paper_graph):
        path = tmp_path / "plain.txt"
        write_edge_list(paper_graph, path)
        assert not read_edge_list(path).is_weighted

    def test_bad_weight_column(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\t1\tnot-a-number\n")
        from repro.errors import DatasetError

        with pytest.raises(DatasetError):
            read_edge_list(path)
