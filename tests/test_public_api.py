"""The promised public surface of the ``repro`` package."""

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_quickstart_docstring_flow(self):
        """The README / module-docstring quickstart must keep working."""
        from repro import CrashSimParams, GraphBuilder, crashsim

        builder = GraphBuilder(directed=True)
        builder.add_edges([("b", "a"), ("c", "a"), ("a", "b"), ("d", "c")])
        graph = builder.build()
        result = crashsim(
            graph,
            builder.node_id("a"),
            params=CrashSimParams(c=0.6, epsilon=0.1, n_r_override=200),
            seed=7,
        )
        expected = sorted(builder.node_id(x) for x in ("b", "c", "d"))
        assert sorted(result.as_dict()) == expected
