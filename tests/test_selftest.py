"""Tests for the installation self-test."""

from repro.cli import main
from repro.selftest import CHECKS, run_selftest


class TestSelftest:
    def test_passes_on_this_install(self, capsys):
        assert run_selftest(verbose=True)
        out = capsys.readouterr().out
        assert "selftest passed" in out
        assert out.count("ok ") == len(CHECKS)

    def test_quiet_mode(self, capsys):
        assert run_selftest(verbose=False)
        assert capsys.readouterr().out == ""

    def test_cli_entry(self, capsys):
        assert main(["selftest"]) == 0
        assert "selftest passed" in capsys.readouterr().out

    def test_failure_reported(self, capsys, monkeypatch):
        import repro.selftest as module

        def broken():
            raise AssertionError("injected")

        monkeypatch.setattr(
            module, "CHECKS", [("broken check", broken)] + list(CHECKS)
        )
        assert not module.run_selftest()
        out = capsys.readouterr().out
        assert "FAIL  broken check" in out
        assert "selftest FAILED" in out
