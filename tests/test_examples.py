"""Every example script must run to completion (they carry assertions).

Executed in-process via runpy so failures surface as ordinary test
failures with tracebacks; stdout is captured by pytest.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"


def test_all_examples_discovered():
    # Guard against the glob silently matching nothing after a move.
    assert len(SCRIPTS) >= 8
