"""Tests for the timing helpers."""

import time

import pytest

from repro.errors import ParameterError
from repro.metrics.timing import Timer, TimingStats, measure


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            time.sleep(0.005)
        assert timer.elapsed >= first

    def test_exception_still_records(self):
        timer = Timer()
        with pytest.raises(RuntimeError):
            with timer:
                raise RuntimeError("boom")
        assert timer.elapsed >= 0.0


class TestMeasure:
    def test_returns_result_and_time(self):
        result, elapsed = measure(lambda: 21 * 2)
        assert result == 42
        assert elapsed >= 0.0


class TestTimingStats:
    def test_aggregates(self):
        stats = TimingStats()
        for value in (0.1, 0.2, 0.3):
            stats.add(value)
        assert stats.count == 3
        assert stats.total == pytest.approx(0.6)
        assert stats.mean == pytest.approx(0.2)
        assert stats.minimum == pytest.approx(0.1)
        assert stats.maximum == pytest.approx(0.3)

    def test_empty(self):
        stats = TimingStats()
        assert stats.mean == 0.0
        assert stats.minimum == 0.0
        assert stats.maximum == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            TimingStats().add(-1.0)

    def test_as_row(self):
        stats = TimingStats()
        stats.add(1.0)
        row = stats.as_row()
        assert row["count"] == 1
        assert row["mean_s"] == 1.0
