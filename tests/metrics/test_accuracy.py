"""Tests for the paper's accuracy metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ParameterError
from repro.metrics.accuracy import (
    max_error,
    mean_absolute_error,
    result_set_precision,
    top_k_precision,
)

unit_vectors = arrays(
    dtype=np.float64,
    shape=st.integers(1, 20),
    elements=st.floats(min_value=0.0, max_value=1.0),
)


class TestMaxError:
    def test_basic(self):
        truth = np.array([0.1, 0.5, 0.9])
        estimate = np.array([0.1, 0.6, 0.7])
        assert max_error(truth, estimate) == pytest.approx(0.2)

    def test_exclude_source(self):
        truth = np.array([1.0, 0.5])
        estimate = np.array([0.0, 0.5])
        assert max_error(truth, estimate, exclude=[0]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ParameterError):
            max_error(np.zeros(3), np.zeros(4))

    def test_all_excluded(self):
        assert max_error(np.ones(2), np.zeros(2), exclude=[0, 1]) == 0.0

    @given(unit_vectors)
    @settings(max_examples=40, deadline=None)
    def test_zero_for_identical(self, vector):
        assert max_error(vector, vector.copy()) == 0.0

    @given(unit_vectors)
    @settings(max_examples=40, deadline=None)
    def test_dominates_mean(self, vector):
        other = np.clip(vector + 0.05, 0, 1)
        # 1e-12 slack: np.mean's pairwise summation can round a hair above
        # the true maximum when every element is identical.
        assert (
            max_error(vector, other)
            >= mean_absolute_error(vector, other) - 1e-12
        )


class TestResultSetPrecision:
    def test_paper_formula(self):
        # |∩| / max(k1, k2)
        assert result_set_precision({1, 2, 3}, {2, 3, 4, 5}) == pytest.approx(
            2 / 4
        )

    def test_perfect(self):
        assert result_set_precision({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert result_set_precision({1}, {2}) == 0.0

    def test_both_empty_is_perfect(self):
        assert result_set_precision(set(), set()) == 1.0

    def test_one_empty(self):
        assert result_set_precision({1, 2}, set()) == 0.0

    @given(
        st.sets(st.integers(0, 30), max_size=15),
        st.sets(st.integers(0, 30), max_size=15),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounded_and_symmetric(self, a, b):
        value = result_set_precision(a, b)
        assert 0.0 <= value <= 1.0
        assert value == result_set_precision(b, a)


class TestTopKPrecision:
    def test_full_overlap(self):
        truth = np.array([0.9, 0.5, 0.1, 0.0])
        estimate = np.array([0.8, 0.6, 0.2, 0.1])
        assert top_k_precision(truth, estimate, 2) == 1.0

    def test_partial_overlap(self):
        truth = np.array([0.9, 0.5, 0.1, 0.0])
        estimate = np.array([0.0, 0.1, 0.5, 0.9])
        assert top_k_precision(truth, estimate, 2) == 0.0

    def test_exclude_node(self):
        truth = np.array([1.0, 0.5, 0.4])
        estimate = np.array([1.0, 0.4, 0.5])
        assert top_k_precision(truth, estimate, 1, exclude=0) == 0.0

    def test_k_zero(self):
        assert top_k_precision(np.array([1.0]), np.array([0.5]), 0) == 1.0

    def test_k_larger_than_n(self):
        truth = np.array([0.9, 0.5])
        assert top_k_precision(truth, truth, 10) == 1.0

    def test_negative_k(self):
        with pytest.raises(ParameterError):
            top_k_precision(np.array([1.0]), np.array([1.0]), -1)
