"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table2"])
        assert args.experiment == "table2"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_dataset_repeatable(self):
        args = build_parser().parse_args(
            ["fig5", "--dataset", "hepth", "--dataset", "as733"]
        )
        assert args.dataset == ["hepth", "as733"]


class TestMain:
    def test_table2_prints(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "sim(A, node)" in out

    def test_table3_prints(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "quick")
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "as733" in out

    def test_profile_flag_overrides_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "full")
        assert main(["table3", "--profile", "quick"]) == 0
        out = capsys.readouterr().out
        assert "as733" in out

    def test_export_dataset(self, capsys, tmp_path):
        assert (
            main(
                [
                    "export-dataset",
                    "--dataset",
                    "hepth",
                    "--out",
                    str(tmp_path),
                    "--snapshots",
                    "2",
                ]
            )
            == 0
        )
        assert "wrote 2 snapshot files" in capsys.readouterr().out
        files = sorted((tmp_path / "hepth").glob("*.txt"))
        assert len(files) == 2

    def test_export_dataset_requires_out(self):
        with pytest.raises(SystemExit):
            main(["export-dataset"])

    def test_check_against_baseline(self, tmp_path, capsys):
        assert main(["table2", "--save", str(tmp_path / "table2.json")]) == 0
        capsys.readouterr()
        assert main(["check", "--baseline", str(tmp_path)]) == 0
        assert "table2: ok" in capsys.readouterr().out

    def test_check_detects_drift(self, tmp_path, capsys):
        from repro.experiments.serialization import save_rows

        # A fabricated baseline with a wrong value must trip the check.
        bogus = [{"node": "A", "sim(A, node)": 0.5}] + [
            {"node": chr(ord("B") + i), "sim(A, node)": 0.0} for i in range(7)
        ]
        save_rows(bogus, tmp_path / "table2.json", experiment="table2")
        assert main(["check", "--baseline", str(tmp_path)]) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_check_requires_baseline(self):
        with pytest.raises(SystemExit):
            main(["check"])

    def test_fig7_prints_sparklines(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "quick")
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "taller = slower" in out

    def test_all_saves_one_json_per_experiment(self, tmp_path, capsys, monkeypatch):
        """'all --save DIR' writes one result file per runner.  Patch the
        expensive runners to keep this a CLI-wiring test, not a rerun of
        the whole harness."""
        import repro.cli as cli

        monkeypatch.setenv("REPRO_PROFILE", "quick")
        stub_rows = [{"stub": 1}]
        for name in (
            "run_figure5",
            "run_figure6",
            "run_figure7",
            "run_pruning_ablation",
            "run_estimator_ablation",
            "run_scalability",
            "run_c_sensitivity",
            "run_theta_sensitivity",
        ):
            monkeypatch.setattr(cli, name, lambda *a, **k: list(stub_rows))
        assert main(["all", "--save", str(tmp_path)]) == 0
        written = sorted(p.name for p in tmp_path.glob("*.json"))
        assert "table2.json" in written
        assert "fig5.json" in written
        assert len(written) == 10
