"""Statistical-guarantee tests: a direct check of Theorem 1.

Theorem 1 (via Lemma 3's Chernoff argument) promises that with the
theoretical trial count ``n_r`` the CrashSim estimate concentrates within
``ε`` of its expectation with probability ``≥ 1 − δ`` per pair.  The
estimator's exact expectation is computable in closed form: a candidate
walk's step-``l`` occupancy is its own corrected revReach level, so

    E[s(u, v)] = Σ_l ⟨U_u[l, ·], U_v[l, ·]⟩

— the truncated meeting-probability series.  ``TestTheorem1Concentration``
checks the estimate against that quantity on the paper's Fig. 2 graph at
the *theoretical* ``n_r``; the margins are calibrated so that cutting
``n_r`` to 10% of the Lemma-3 value makes the test fail (both the max-error
and the ≥ 99%-of-pairs assertions), i.e. the suite is genuinely sensitive
to the trial count, not vacuously green.

``TestEndToEndGuarantee`` checks the full pipeline against
``power_method_all_pairs`` ground truth on a seeded Erdős–Rényi graph,
where the literal estimator's multi-meeting bias is negligible.  On the
tiny cyclic Fig. 2 graph that bias is *not* negligible — walks that meet
keep re-meeting in the 3-cycle — which ``test_fig2_literal_bias_is_real``
pins explicitly: it is why the concentration check above compares against
the estimator's expectation rather than plain SimRank (DESIGN.md §2.2).
"""

import numpy as np
import pytest

from repro.baselines.power_method import power_method_all_pairs
from repro.core.crashsim import crashsim
from repro.core.params import CrashSimParams
from repro.core.revreach import revreach_levels
from repro.datasets.example_graph import example_graph
from repro.graph.generators import erdos_renyi

SEED = 2024


def crash_expectation(graph, params):
    """Exact expectation of the literal estimator for every (u, v) pair."""
    trees = [
        revreach_levels(graph, source, params.l_max, params.c).matrix
        for source in range(graph.num_nodes)
    ]
    stacked = np.stack(trees)  # (n, l_max + 1, n)
    return np.einsum("ulk,vlk->uv", stacked, stacked)


def error_sweep(graph, params, sources, truth, seed, sampler="cdf"):
    """|estimate − truth| over every (source, candidate) pair, in order."""
    rng = np.random.default_rng(seed)
    errors = []
    for source in sources:
        result = crashsim(graph, source, params=params, seed=rng, sampler=sampler)
        errors.append(np.abs(truth[source][result.candidates] - result.scores))
    return np.concatenate(errors)


class TestTheorem1Concentration:
    """Estimate vs. exact expectation at the theoretical ``n_r`` (Fig. 2)."""

    def test_within_epsilon_at_theoretical_n_r(self):
        graph = example_graph()
        params = CrashSimParams()  # paper defaults: c=0.6, ε=0.025, δ=0.01
        # No override/cap: crashsim runs the exact Lemma-3 trial count.
        assert params.n_r(graph.num_nodes) == params.n_r_theoretical(graph.num_nodes)
        truth = crash_expectation(graph, params)
        errors = error_sweep(graph, params, range(graph.num_nodes), truth, SEED)
        # Calibrated sensitivity: at 10% of the theoretical n_r the max
        # error exceeds ε AND the within-ε fraction drops below 99%.
        assert errors.max() <= params.epsilon, errors.max()
        assert np.mean(errors <= params.epsilon) >= 0.99

    def test_sensitive_to_trial_count(self):
        """The margin the previous test relies on: 10% n_r is visibly worse.

        Not an xfail of the guarantee — a positive check that the noise
        floor scales with the trial count, so cutting n_r cannot slip
        through the assertions above.
        """
        graph = example_graph()
        full = CrashSimParams()
        n_r_cut = max(1, full.n_r_theoretical(graph.num_nodes) // 10)
        cut = CrashSimParams(n_r_override=n_r_cut)
        truth = crash_expectation(graph, full)
        errors = error_sweep(graph, cut, range(graph.num_nodes), truth, SEED)
        assert errors.max() > full.epsilon or np.mean(errors <= full.epsilon) < 0.99


class TestEndToEndGuarantee:
    """Estimate vs. Power-Method SimRank on a seeded Erdős–Rényi graph."""

    def test_within_epsilon_of_ground_truth(self):
        graph = erdos_renyi(60, 300, seed=7)
        params = CrashSimParams(epsilon=0.05)
        assert params.n_r(graph.num_nodes) == params.n_r_theoretical(graph.num_nodes)
        truth = power_method_all_pairs(graph, params.c)
        errors = error_sweep(graph, params, (0, 17, 42), truth, SEED)
        assert np.mean(errors <= params.epsilon) >= 0.99
        assert errors.max() <= params.epsilon, errors.max()

    def test_alias_sampler_within_epsilon_weighted(self):
        """Theorem 1 with ``sampler="alias"``: the alias stream draws the
        same per-node distribution, so the Lemma-3 concentration carries
        over unchanged on a weighted graph."""
        from repro.graph.digraph import DiGraph
        from repro.rng import ensure_rng

        base = erdos_renyi(60, 300, seed=7)
        arcs = list(base.edges())
        weights = ensure_rng(8).uniform(0.5, 4.0, size=len(arcs))
        graph = DiGraph.from_edges(60, arcs, weights=weights)
        params = CrashSimParams(epsilon=0.05)
        assert params.n_r(graph.num_nodes) == params.n_r_theoretical(graph.num_nodes)
        truth = power_method_all_pairs(graph, params.c)
        errors = error_sweep(
            graph, params, (0, 17, 42), truth, SEED, sampler="alias"
        )
        assert np.mean(errors <= params.epsilon) >= 0.99
        assert errors.max() <= params.epsilon, errors.max()


class TestAdaptiveGuarantee:
    """Empirical-Bernstein early stopping keeps the ε guarantee.

    The adaptive stopper (``repro.core.adaptive``) halts the trial loop
    once the EB half-width plus the Lemma-2 truncation slack is within ε
    for every candidate — so an early-stopped estimate must satisfy the
    same |estimate − E[s]| ≤ ε contract the fixed-n_r run does, while
    using at most half the Lemma-3 trial budget on these instances.
    The graph is larger than the 64-hub cache, so most candidates are
    genuinely stochastic (hub candidates retire exactly at step 0).
    """

    def test_within_epsilon_while_saving_trials(self):
        graph = erdos_renyi(200, 1000, seed=11)
        params = CrashSimParams(epsilon=0.05)
        truth = crash_expectation(graph, params)
        rng = np.random.default_rng(SEED)
        errors = []
        used_fractions = []
        for source in (0, 17, 42, 101):
            result = crashsim(
                graph, source, params=params, seed=rng, adaptive=True
            )
            assert result.stopped_early and not result.degraded
            errors.append(
                np.abs(truth[source][result.candidates] - result.scores)
            )
            used_fractions.append(result.trials_completed / result.n_r)
        errors = np.concatenate(errors)
        assert errors.size >= 200  # the sweep covers 200+ pairs
        assert errors.max() <= params.epsilon, errors.max()
        # Aggregate trial budget over the sweep: at most half of Lemma 3's
        # (hard sources may individually run a little past 0.5; the
        # power-law bench gates the per-query ratio at scale).
        assert float(np.mean(used_fractions)) <= 0.5, used_fractions
        assert max(used_fractions) < 1.0, used_fractions

    def test_deadline_never_worsens_adaptive_metadata(self):
        # Early stop and deadline compose: when the stopper converges
        # before the budget expires the answer is full quality, with
        # metadata (and bits) identical to the unbounded adaptive run.
        from repro.parallel import parallel_crashsim

        graph = erdos_renyi(200, 1000, seed=11)
        params = CrashSimParams(epsilon=0.05)
        plain = parallel_crashsim(
            graph, 0, params=params, seed=SEED, workers=2, mode="thread",
            adaptive=True,
        )
        bounded = parallel_crashsim(
            graph, 0, params=params, seed=SEED, workers=2, mode="thread",
            adaptive=True, deadline=120.0,
        )
        assert np.array_equal(plain.scores, bounded.scores)
        assert not bounded.degraded
        assert bounded.achieved_epsilon == plain.achieved_epsilon
        assert bounded.achieved_epsilon <= params.epsilon


def test_fig2_literal_bias_is_real():
    """Why the concentration check uses the expectation, not plain SimRank:
    the literal estimator re-counts walk pairs that meet repeatedly in the
    Fig. 2 cycles, displacing it from SimRank by far more than ε."""
    graph = example_graph()
    params = CrashSimParams()
    truth = power_method_all_pairs(graph, params.c)
    expectation = crash_expectation(graph, params)
    np.fill_diagonal(truth, 0.0)
    np.fill_diagonal(expectation, 0.0)
    bias = np.abs(expectation - truth).max()
    assert bias > params.epsilon  # ≈ 0.27: the guarantee targets E[s], not sim
