"""The metrics registry: counters, gauges, histograms, exposition.

Everything here is single-process and deterministic; the concurrency leg
lives in ``tests/serve/test_soak.py`` (scrapes racing the dispatcher) and
the behavioural-inertness leg in ``tests/obs/test_identity.py``.
"""

import json
import threading

import pytest

from repro import obs
from repro.errors import ParameterError


@pytest.fixture
def registry():
    return obs.MetricsRegistry()


@pytest.fixture
def enabled():
    """Force the kill switch on for the test, restoring it afterwards."""
    previous = obs.set_enabled(True)
    yield
    obs.set_enabled(previous)


class TestCounter:
    def test_inc_defaults_to_one_and_accepts_amounts(self, registry, enabled):
        counter = registry.counter("t_events_total", "events")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42
        assert counter.snapshot_value() == 42

    def test_negative_increment_rejected(self, registry, enabled):
        counter = registry.counter("t_events_total")
        with pytest.raises(ParameterError):
            counter.inc(-1)

    def test_invalid_metric_name_rejected(self, registry):
        with pytest.raises(ParameterError):
            registry.counter("0starts_with_digit")
        with pytest.raises(ParameterError):
            registry.counter("has space")

    def test_concurrent_increments_do_not_lose_counts(self, registry, enabled):
        counter = registry.counter("t_racy_total")
        per_thread, n_threads = 5_000, 8

        def hammer():
            for _ in range(per_thread):
                counter.inc()

        threads = [
            threading.Thread(target=hammer, daemon=True)
            for _ in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        assert counter.value == per_thread * n_threads


class TestGauge:
    def test_set_inc_dec(self, registry, enabled):
        gauge = registry.gauge("t_depth")
        gauge.set(10)
        gauge.inc(3)
        gauge.dec(5)
        assert gauge.value == 8


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self, registry, enabled):
        hist = registry.histogram("t_sizes", buckets=(1, 4, 16))
        for value in (1, 2, 3, 20):
            hist.observe(value)
        snap = hist.snapshot_value()
        assert snap["count"] == 4
        assert snap["sum"] == 26.0
        # Per-bucket (non-cumulative) counts: <=1, <=4, <=16, +Inf.
        assert snap["buckets"] == {"1.0": 1, "4.0": 2, "16.0": 0, "+Inf": 1}

    def test_percentiles_interpolate_toward_bucket_bound(
        self, registry, enabled
    ):
        hist = registry.histogram("t_lat", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            hist.observe(2.0)
        # All mass sits in the (1.0, 2.0] bucket: the estimator walks
        # linearly through it, exact at the bucket's upper bound.
        assert hist.p50 == pytest.approx(1.5)
        assert hist.p99 == pytest.approx(1.99)
        assert hist.percentile(100) == pytest.approx(2.0)

    def test_percentile_interpolates_within_bucket(self, registry, enabled):
        hist = registry.histogram("t_lat2", buckets=(1.0, 2.0))
        hist.observe(1.5)
        hist.observe(1.5)
        # Both observations sit in the (1.0, 2.0] bucket; the median
        # interpolates halfway into it.
        assert 1.0 < hist.percentile(50) <= 2.0

    def test_percentile_empty_and_bounds(self, registry, enabled):
        hist = registry.histogram("t_lat3", buckets=(1.0,))
        assert hist.percentile(99) == 0.0
        with pytest.raises(ParameterError):
            hist.percentile(101)
        with pytest.raises(ParameterError):
            hist.percentile(-1)

    def test_overflow_reported_as_last_finite_bound(self, registry, enabled):
        hist = registry.histogram("t_lat4", buckets=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.percentile(50) == 2.0

    def test_buckets_must_be_increasing_and_nonempty(self, registry):
        with pytest.raises(ParameterError):
            registry.histogram("t_bad", buckets=())
        with pytest.raises(ParameterError):
            registry.histogram("t_bad2", buckets=(2.0, 1.0))


class TestRegistry:
    def test_registration_is_idempotent(self, registry):
        first = registry.counter("t_once_total")
        second = registry.counter("t_once_total")
        assert first is second
        assert len(registry) == 1

    def test_kind_mismatch_raises(self, registry):
        registry.counter("t_thing")
        with pytest.raises(ParameterError):
            registry.gauge("t_thing")
        with pytest.raises(ParameterError):
            registry.histogram("t_thing")

    def test_get_returns_metric_or_none(self, registry):
        counter = registry.counter("t_known_total")
        assert registry.get("t_known_total") is counter
        assert registry.get("t_unknown") is None

    def test_snapshot_and_dump_json_round_trip(self, registry, enabled):
        registry.counter("t_a_total").inc(3)
        registry.gauge("t_b").set(1.5)
        registry.histogram("t_c", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["t_a_total"] == 3
        assert snap["t_b"] == 1.5
        assert snap["t_c"]["count"] == 1
        assert json.loads(registry.dump_json()) == json.loads(
            json.dumps(snap)
        )


class TestKillSwitch:
    def test_disabled_mutations_are_no_ops(self, registry):
        counter = registry.counter("t_off_total")
        gauge = registry.gauge("t_off_gauge")
        hist = registry.histogram("t_off_hist", buckets=(1.0,))
        previous = obs.set_enabled(False)
        try:
            assert not obs.obs_enabled()
            counter.inc(5)
            gauge.set(9)
            hist.observe(0.5)
        finally:
            obs.set_enabled(previous)
        assert counter.value == 0
        assert gauge.value == 0.0
        assert hist.count == 0

    def test_set_enabled_returns_previous_state(self):
        previous = obs.set_enabled(True)
        try:
            assert obs.set_enabled(False) is True
            assert obs.set_enabled(True) is False
        finally:
            obs.set_enabled(previous)

    def test_disabling_keeps_last_values_scrapable(self, registry, enabled):
        counter = registry.counter("t_keep_total")
        counter.inc(7)
        previous = obs.set_enabled(False)
        try:
            assert counter.value == 7
            assert "t_keep_total 7" in obs.render_prometheus(registry)
        finally:
            obs.set_enabled(previous)


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self, registry, enabled):
        registry.counter("t_hits_total", "hit count").inc(3)
        registry.gauge("t_depth", "queue depth").set(2)
        text = obs.render_prometheus(registry)
        assert "# HELP t_hits_total hit count" in text
        assert "# TYPE t_hits_total counter" in text
        assert "t_hits_total 3" in text.splitlines()
        assert "# TYPE t_depth gauge" in text
        assert "t_depth 2" in text.splitlines()
        assert text.endswith("\n")

    def test_histogram_exposition_is_cumulative(self, registry, enabled):
        hist = registry.histogram("t_lat", "latency", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 5.0):
            hist.observe(value)
        lines = obs.render_prometheus(registry).splitlines()
        assert 't_lat_bucket{le="1"} 1' in lines
        assert 't_lat_bucket{le="2"} 2' in lines
        assert 't_lat_bucket{le="+Inf"} 3' in lines
        assert "t_lat_sum 7" in lines
        assert "t_lat_count 3" in lines

    def test_multiple_registries_concatenate(self, enabled):
        first, second = obs.MetricsRegistry(), obs.MetricsRegistry()
        first.counter("t_one_total").inc()
        second.counter("t_two_total").inc(2)
        lines = obs.render_prometheus(first, second).splitlines()
        assert "t_one_total 1" in lines
        assert "t_two_total 2" in lines

    def test_help_newlines_escaped(self, registry, enabled):
        registry.counter("t_multi_total", "line one\nline two")
        text = obs.render_prometheus(registry)
        assert "# HELP t_multi_total line one\\nline two" in text


class TestGlobalRegistry:
    def test_module_import_registered_core_families(self):
        # Importing the instrumented subsystems registers their metric
        # families in the process-wide registry.
        import repro.core.revreach  # noqa: F401
        import repro.walks.kernel  # noqa: F401

        for name in (
            "repro_kernel_walks_total",
            "repro_kernel_steps_total",
            "repro_tree_builds_total",
        ):
            assert obs.REGISTRY.get(name) is not None, name
        assert obs.get_registry() is obs.REGISTRY
