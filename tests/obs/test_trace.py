"""Ambient tracing: span trees, thread-local activation, null contexts."""

import threading

from repro import obs


class TestSpanTree:
    def test_nested_spans_build_a_tree(self):
        trace = obs.Trace("query")
        with trace.activate():
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
                with obs.span("sibling"):
                    pass
        root = trace.root
        assert root.name == "query"
        assert [child.name for child in root.children] == ["outer"]
        outer = root.children[0]
        assert [child.name for child in outer.children] == [
            "inner",
            "sibling",
        ]
        # Every span closed, and children finished within their parent.
        for node in root.walk():
            assert node.elapsed is not None
        assert outer.elapsed >= outer.children[0].elapsed

    def test_events_are_zero_duration_markers(self):
        trace = obs.Trace()
        with trace.activate():
            with obs.span("phase"):
                obs.event("retry", shard=3)
        marker = trace.root.children[0].children[0]
        assert marker.name == "retry"
        assert marker.elapsed == 0.0
        assert marker.meta == {"shard": 3}

    def test_span_meta_recorded(self):
        trace = obs.Trace("query", {"source": 7})
        with trace.activate():
            with obs.span("walk_kernel", n_trials=64) as span:
                assert span.meta == {"n_trials": 64}
        assert trace.root.meta == {"source": 7}

    def test_out_of_order_exits_close_back_to_parent(self):
        # An exception unwinding through several spans exits them out of
        # order; the trace must pop back to the right parent and close
        # everything in between.
        trace = obs.Trace()
        with trace.activate():
            outer = trace.span("outer")
            inner = trace.span("inner")
            outer.__enter__()
            inner.__enter__()
            outer.__exit__(None, None, None)  # skips inner's exit
            with obs.span("after"):
                pass
        names = [child.name for child in trace.root.children]
        assert names == ["outer", "after"]
        for node in trace.root.walk():
            assert node.elapsed is not None


class TestAmbientBinding:
    def test_no_active_trace_is_a_shared_null_noop(self):
        assert obs.current_trace() is None
        context = obs.span("anything")
        assert context is obs.span("something_else")  # the shared _NULL
        with context as span:
            assert span is None
        obs.event("ignored")  # must not raise

    def test_activation_is_scoped_and_restores_previous(self):
        outer, inner = obs.Trace("outer"), obs.Trace("inner")
        with outer.activate():
            assert obs.current_trace() is outer
            with inner.activate():
                assert obs.current_trace() is inner
            assert obs.current_trace() is outer
        assert obs.current_trace() is None

    def test_trace_is_thread_local(self):
        trace = obs.Trace()
        seen = []

        def worker():
            seen.append(obs.current_trace())

        with trace.activate():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join(timeout=30)
        assert seen == [None]

    def test_root_closes_on_deactivation(self):
        trace = obs.Trace()
        with trace.activate():
            assert trace.root.elapsed is None
            assert trace.elapsed >= 0.0  # live reading while open
        assert trace.root.elapsed is not None
        assert trace.elapsed == trace.root.elapsed


class TestReporting:
    def _traced(self):
        trace = obs.Trace("query", {"source": 3})
        with trace.activate():
            with obs.span("tree_build"):
                pass
            with obs.span("walk_kernel", walks=8):
                obs.event("retry")
        return trace

    def test_as_dict_round_trips_structure(self):
        payload = self._traced().as_dict()
        assert payload["name"] == "query"
        assert payload["meta"] == {"source": 3}
        children = payload["children"]
        assert [child["name"] for child in children] == [
            "tree_build",
            "walk_kernel",
        ]
        assert children[1]["meta"] == {"walks": 8}
        assert children[1]["children"][0]["name"] == "retry"

    def test_render_is_an_indented_tree_with_meta(self):
        lines = self._traced().render().splitlines()
        assert lines[0].startswith("query")
        assert "[source=3]" in lines[0]
        assert lines[1].startswith("  tree_build")
        assert "ms" in lines[1]
        assert lines[2].startswith("  walk_kernel")
        assert "[walks=8]" in lines[2]
        assert lines[3].startswith("    retry")

    def test_render_unit_scale(self):
        text = self._traced().render(unit_scale=1.0, unit="s")
        assert "s" in text and "ms" not in text
