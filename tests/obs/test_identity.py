"""Observability is behaviourally inert: instrumented runs keep their bits.

The observability layer's contract is that it never draws from an RNG and
never reorders work, so a run with the registry live *and* a trace active
must reproduce the exact float bit patterns pinned in
``tests/fixtures/seed_behaviour.json`` — the same fixture the
representation refactors answer to.  A failure here means instrumentation
changed behaviour, which is a correctness bug regardless of overhead.
"""

import json
import pathlib

import pytest

from repro import api, obs
from repro.core.crashsim import crashsim
from repro.core.params import CrashSimParams
from repro.graph.generators import preferential_attachment

FIXTURE = (
    pathlib.Path(__file__).parent.parent / "fixtures" / "seed_behaviour.json"
)
PARAMS = CrashSimParams(n_r_override=64)


@pytest.fixture(scope="module")
def pinned():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def graph():
    return preferential_attachment(120, 3, directed=True, seed=5)


@pytest.fixture
def enabled():
    previous = obs.set_enabled(True)
    yield
    obs.set_enabled(previous)


def to_hex(values):
    return [float.hex(float(v)) for v in values]


class TestInstrumentedBitIdentity:
    def test_enabled_registry_matches_pinned_fixture(
        self, pinned, graph, enabled
    ):
        result = crashsim(graph, 0, params=PARAMS, seed=123)
        assert to_hex(result.scores) == pinned["static"]["scores"]

    def test_active_trace_matches_pinned_fixture(self, pinned, graph, enabled):
        trace = obs.Trace("query", {"source": 0})
        with trace.activate():
            result = crashsim(graph, 0, params=PARAMS, seed=123)
        assert to_hex(result.scores) == pinned["static"]["scores"]
        # And the trace actually recorded the kernel phase — the run was
        # instrumented, not silently skipped.
        assert any(
            span.name == "walk_kernel" for span in trace.root.walk()
        )

    def test_kill_switch_does_not_move_a_bit(self, graph):
        previous = obs.set_enabled(True)
        try:
            instrumented = crashsim(graph, 0, params=PARAMS, seed=123)
            obs.set_enabled(False)
            plain = crashsim(graph, 0, params=PARAMS, seed=123)
        finally:
            obs.set_enabled(previous)
        assert to_hex(instrumented.scores) == to_hex(plain.scores)

    def test_api_attaches_ambient_trace_to_scores(self, graph, enabled):
        trace = obs.Trace("query")
        with trace.activate():
            scores = api.single_source(graph, 0, n_r=32, seed=9)
        assert scores.trace is trace
        untraced = api.single_source(graph, 0, n_r=32, seed=9)
        assert untraced.trace is None
        # Tracing itself left the answer untouched.
        assert scores.tobytes() == untraced.tobytes()
