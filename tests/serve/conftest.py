"""Serve-suite fixtures plus a hang watchdog.

A broken engine fails by *hanging* (a dispatcher deadlock, an undrained
queue), which would stall the whole suite.  CI installs ``pytest-timeout``
and lets it enforce the ``@pytest.mark.timeout`` marks; on boxes without
the plugin the autouse watchdog below approximates it with ``SIGALRM``, so
a hung test still dies with a traceback instead of blocking forever.
"""

from __future__ import annotations

import importlib.util
import signal

import numpy as np
import pytest

from repro.graph.generators import preferential_attachment
from repro.serve import Engine, EngineConfig

HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None

#: Applied when a test carries no explicit ``timeout`` mark.
DEFAULT_TIMEOUT = 120


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it runs longer than this "
        "(enforced by pytest-timeout when installed, else by SIGALRM)",
    )


@pytest.fixture(autouse=True)
def _hang_watchdog(request):
    """SIGALRM fallback for ``@pytest.mark.timeout`` when the plugin is absent.

    Alarm-based, so it only covers the main thread's wait points (future
    ``.result()``, ``thread.join()``) — which is exactly where a hung
    engine parks a test.
    """
    if HAVE_PYTEST_TIMEOUT or not hasattr(signal, "SIGALRM"):
        yield
        return
    marker = request.node.get_closest_marker("timeout")
    seconds = int(marker.args[0]) if marker and marker.args else DEFAULT_TIMEOUT

    def _fire(signum, frame):
        raise TimeoutError(
            f"{request.node.nodeid} exceeded the {seconds}s hang watchdog"
        )

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="module")
def serve_graph():
    """A 300-node preferential-attachment graph shared across the module."""
    return preferential_attachment(300, 3, seed=11)


@pytest.fixture(scope="module")
def catalog(serve_graph):
    """A fixed candidate catalogue no low-id query source belongs to."""
    return tuple(range(150, 300))


@pytest.fixture
def engine(serve_graph):
    """A small fast engine; closed (drained) after each test."""
    config = EngineConfig(n_r=32, batch_window=0.005, seed=1234)
    with Engine(serve_graph, config) as eng:
        yield eng


@pytest.fixture
def engine_config():
    return EngineConfig(n_r=32, batch_window=0.005, seed=1234)
