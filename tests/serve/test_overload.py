"""Overload-resilience suite: admission control, breaker, watchdog, close.

Pins the PR-9 serving contracts:

* a bounded queue sheds deterministically — accepted requests stay
  byte-identical to solo :func:`repro.api.single_source` calls, rejected
  ones raise :class:`~repro.errors.EngineOverloadedError` with a priced
  ``retry_after``;
* the circuit breaker's open → half-open → closed walk is deterministic
  under :mod:`repro.faults` ``executor_stall`` injection, and its cheap
  open-state answers are byte-identical to solo ``breaker_n_r`` runs;
* the watchdog recovers a killed or hung dispatcher without losing any
  queued request, failing only genuinely in-flight ones with
  :class:`~repro.errors.DispatcherError`;
* ``close()`` is idempotent under concurrent callers and leaves the
  queue-depth gauge at zero;
* the HTTP front door maps overload to ``429``/``503``/``504`` and honours
  the ``X-Repro-Deadline`` header.

Fault plans target the engine's own chaos sites, so every test builds its
engine *inside* the :func:`repro.faults.active` block; byte-identity
oracles are computed outside the block so the shared default executor
never trips an ``executor_stall`` index meant for the engine.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import api, faults
from repro.errors import (
    DeadlineExceededError,
    DispatcherError,
    EngineClosedError,
    EngineOverloadedError,
    ParameterError,
)
from repro.parallel.executor import ParallelExecutor, RetryBudget, retry_delay
from repro.serve import (
    BreakerState,
    CircuitBreaker,
    Engine,
    EngineConfig,
    QueryRequest,
    create_server,
)

pytestmark = pytest.mark.timeout(120)


def _solo(graph, source, seed, *, n_r=32, deadline=None):
    """The byte-identity oracle for an engine answer."""
    if deadline is None:
        return api.single_source(graph, source, n_r=n_r, seed=seed)
    return api.single_source(
        graph, source, n_r=n_r, seed=seed, deadline=deadline
    )


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreakerUnit:
    def test_disabled_breaker_is_always_closed(self):
        breaker = CircuitBreaker(threshold=0)
        assert not breaker.enabled
        for _ in range(5):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.before_query() is BreakerState.CLOSED
        assert breaker.trips == 0

    def test_trips_after_threshold_consecutive_failures(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown=10.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1

    def test_retry_after_counts_down_the_cooldown(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        assert breaker.retry_after() == pytest.approx(10.0)
        clock.advance(4.0)
        assert breaker.retry_after() == pytest.approx(6.0)
        assert breaker.before_query() is BreakerState.OPEN

    def test_state_peek_does_not_claim_the_probe(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        # Any number of /readyz-style peeks must not consume the probe.
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.probes == 0
        assert breaker.before_query() is BreakerState.HALF_OPEN
        assert breaker.probes == 1
        # While the probe is in flight everybody else routes to OPEN.
        assert breaker.before_query() is BreakerState.OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_failed_probe_reopens_for_another_cooldown(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.before_query() is BreakerState.HALF_OPEN
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2
        assert breaker.retry_after() == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            CircuitBreaker(threshold=-1)
        with pytest.raises(ParameterError):
            CircuitBreaker(threshold=1, cooldown=0.0)


class TestRetryPolicy:
    def test_retry_delay_deterministic_and_capped(self):
        assert retry_delay(0.0, 1, 0) == 0.0
        assert retry_delay(0.01, 1, 3) == retry_delay(0.01, 1, 3)
        # Jitter factor lives in [1, 2): bounded by twice the exponential.
        for attempt in (1, 2, 3):
            for index in range(8):
                delay = retry_delay(0.01, attempt, index)
                base = 0.01 * 2 ** (attempt - 1)
                assert base <= delay < 2 * base + 1e-12
        assert retry_delay(0.5, 20, 1) == 2.0  # RETRY_BACKOFF_CAP

    def test_retry_budget_semantics(self):
        budget = RetryBudget(ratio=0.5, min_tokens=2, max_tokens=3)
        assert budget.tokens == 2.0
        assert budget.try_spend() and budget.try_spend()
        assert not budget.try_spend()
        budget.deposit(10)  # 5 earned, capped at max_tokens
        assert budget.tokens == 3.0
        with pytest.raises(ParameterError):
            RetryBudget(ratio=-0.1)
        with pytest.raises(ParameterError):
            RetryBudget(min_tokens=0)
        with pytest.raises(ParameterError):
            RetryBudget(min_tokens=8, max_tokens=4)

    def test_exhausted_budget_stops_resubmission(self):
        calls = []

        def always_fails(task):
            calls.append(task)
            raise ValueError(f"boom {task}")

        budget = RetryBudget(ratio=0.0, min_tokens=1, max_tokens=1)
        executor = ParallelExecutor(1, retry_budget=budget)
        try:
            outcome = executor.run(always_fails, [0], task_retries=5)
        finally:
            executor.close()
        # One original attempt plus the single budgeted retry — the
        # per-task allowance of 5 never gets a chance to amplify load.
        assert len(calls) == 2
        assert not outcome.completed[0]
        assert isinstance(outcome.errors[0], ValueError)
        assert budget.tokens == 0.0


class TestAdmissionControl:
    def test_config_validation(self):
        with pytest.raises(ParameterError):
            EngineConfig(max_queue_depth=0)
        with pytest.raises(ParameterError):
            EngineConfig(shed_policy="drop-newest")
        with pytest.raises(ParameterError):
            EngineConfig(breaker_threshold=-1)
        with pytest.raises(ParameterError):
            EngineConfig(retry_budget=0)
        with pytest.raises(ParameterError):
            EngineConfig(retry_backoff=-0.1)

    def test_reject_policy_full_queue(self, serve_graph):
        oracles = {
            seed: _solo(serve_graph, 150 + seed, seed) for seed in (11, 12)
        }
        config = EngineConfig(
            n_r=32, batch_window=0.0, seed=1234, max_queue_depth=2
        )
        # Stall the dispatcher at startup so the queue provably fills.
        plan = {"dispatcher": {"0": {"kind": "delay", "seconds": 0.6}}}
        with faults.active(plan):
            with Engine(serve_graph, config) as engine:
                futures = {
                    seed: engine.submit(
                        QueryRequest.make(150 + seed, seed=seed)
                    )
                    for seed in (11, 12)
                }
                with pytest.raises(EngineOverloadedError) as excinfo:
                    engine.submit(QueryRequest.make(163, seed=13))
                assert excinfo.value.retry_after > 0
                stats = engine.stats()
                assert stats["overload_rejected"] == 1
                assert stats["queue_depth"] == 2
                for seed, future in futures.items():
                    result = future.result(timeout=30)
                    assert (
                        result.scores.tobytes() == oracles[seed].tobytes()
                    )
        final = engine.stats()
        assert final["queries"] == 2
        assert final["shed"] == 0
        assert engine.registry.snapshot()["repro_engine_queue_depth"] == 0

    def test_shed_oldest_displaces_deadline_less(self, serve_graph):
        oracle_deadline = _solo(serve_graph, 151, 22, deadline=60.0)
        oracle_new = _solo(serve_graph, 152, 23)
        config = EngineConfig(
            n_r=32,
            batch_window=0.0,
            seed=1234,
            max_queue_depth=2,
            shed_policy="shed-oldest",
        )
        plan = {"dispatcher": {"0": {"kind": "delay", "seconds": 0.6}}}
        with faults.active(plan):
            with Engine(serve_graph, config) as engine:
                victim = engine.submit(QueryRequest.make(150, seed=21))
                keeper = engine.submit(
                    QueryRequest.make(151, seed=22, deadline=30.0)
                )
                newcomer = engine.submit(QueryRequest.make(152, seed=23))
                with pytest.raises(EngineOverloadedError) as excinfo:
                    victim.result(timeout=5)
                assert excinfo.value.retry_after > 0
                assert keeper.result(
                    timeout=30
                ).scores.tobytes() == oracle_deadline.tobytes()
                assert newcomer.result(
                    timeout=30
                ).scores.tobytes() == oracle_new.tobytes()
        stats = engine.stats()
        assert stats["shed"] == 1
        assert stats["overload_rejected"] == 0

    def test_shed_oldest_rejects_when_everything_has_a_deadline(
        self, serve_graph
    ):
        config = EngineConfig(
            n_r=32,
            batch_window=0.0,
            seed=1234,
            max_queue_depth=2,
            shed_policy="shed-oldest",
        )
        plan = {"dispatcher": {"0": {"kind": "delay", "seconds": 0.6}}}
        with faults.active(plan):
            with Engine(serve_graph, config) as engine:
                first = engine.submit(
                    QueryRequest.make(150, seed=31, deadline=30.0)
                )
                second = engine.submit(
                    QueryRequest.make(151, seed=32, deadline=30.0)
                )
                with pytest.raises(EngineOverloadedError):
                    engine.submit(QueryRequest.make(152, seed=33))
                for future in (first, second):
                    assert future.result(timeout=30) is not None
        stats = engine.stats()
        assert stats["shed"] == 0
        assert stats["overload_rejected"] == 1

    def test_queue_delay_burns_the_deadline(self, serve_graph):
        config = EngineConfig(n_r=32, batch_window=0.0, seed=1234)
        plan = {"queue_delay": {"0": {"kind": "delay", "seconds": 0.5}}}
        with faults.active(plan):
            with Engine(serve_graph, config) as engine:
                future = engine.submit(
                    QueryRequest.make(150, seed=41, deadline=0.2)
                )
                with pytest.raises(DeadlineExceededError):
                    future.result(timeout=30)
                assert engine.stats()["expired"] == 1

    def test_saturation_soak_sheds_without_losing_accepted(
        self, serve_graph
    ):
        n_threads, per_thread = 8, 5
        jobs = {}  # (tid, i) -> (source, seed)
        for tid in range(n_threads):
            for i in range(per_thread):
                jobs[(tid, i)] = (
                    150 + (tid * 7 + i * 3) % 150,
                    1000 + tid * 100 + i,
                )
        config = EngineConfig(
            n_r=32, batch_window=0.002, seed=1234, max_queue_depth=4
        )
        accepted, rejected, failures = {}, [], []
        barrier = threading.Barrier(n_threads)
        plan = {"dispatcher": {"0": {"kind": "delay", "seconds": 0.5}}}
        with faults.active(plan):
            with Engine(serve_graph, config) as engine:

                def client(tid):
                    try:
                        barrier.wait(timeout=30)
                        for i in range(per_thread):
                            source, seed = jobs[(tid, i)]
                            try:
                                future = engine.submit(
                                    QueryRequest.make(source, seed=seed)
                                )
                            except EngineOverloadedError as exc:
                                assert exc.retry_after > 0
                                rejected.append((tid, i))
                            else:
                                accepted[(tid, i)] = future
                    except Exception as exc:  # pragma: no cover
                        failures.append(exc)

                threads = [
                    threading.Thread(target=client, args=(tid,))
                    for tid in range(n_threads)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60)
                    assert not thread.is_alive(), "client thread hung"
                assert not failures, failures
                results = {
                    key: future.result(timeout=60)
                    for key, future in accepted.items()
                }
        assert len(accepted) + len(rejected) == n_threads * per_thread
        assert rejected, "saturation never tripped admission control"
        stats = engine.stats()
        assert stats["queries"] == len(accepted)
        assert stats["overload_rejected"] == len(rejected)
        assert stats["queue_depth"] == 0
        assert engine.registry.snapshot()["repro_engine_queue_depth"] == 0
        # Every accepted answer is byte-identical to the solo call.
        for key, result in results.items():
            source, seed = jobs[key]
            oracle = _solo(serve_graph, source, seed)
            assert result.scores.tobytes() == oracle.tobytes()


class TestEngineBreaker:
    def _config(self, **overrides):
        base = dict(
            n_r=32,
            batch_window=0.0,
            seed=1234,
            workers=1,
            breaker_threshold=2,
            breaker_cooldown=0.5,
            breaker_n_r=8,
        )
        base.update(overrides)
        return EngineConfig(**base)

    def test_open_half_open_closed_walk_is_deterministic(self, serve_graph):
        cheap_oracle = _solo(serve_graph, 160, 52, n_r=8)
        probe_oracle = _solo(serve_graph, 161, 53, deadline=60.0)
        plan = {
            "executor_stall": {
                "0": {"kind": "delay", "seconds": 1.0},
                "1": {"kind": "delay", "seconds": 1.0},
            }
        }
        with faults.active(plan):
            with Engine(serve_graph, self._config()) as engine:
                # Two consecutive stalled runs expire their deadlines and
                # trip the breaker.
                for seed in (50, 51):
                    with pytest.raises(DeadlineExceededError):
                        engine.query(150, seed=seed, deadline=0.25)
                stats = engine.stats()
                assert stats["breaker_state"] == "open"
                assert stats["breaker_trips"] == 1
                ready, reason, retry_after = engine.readiness()
                assert not ready and reason == "breaker-open"
                assert retry_after is not None and retry_after > 0

                # Open state: answered from the cheap breaker_n_r mode —
                # degraded, honestly priced, byte-identical to the solo
                # low-trial run, and no executor round-trip (so it does
                # not consume a fault ordinal).
                cheap = engine.query(160, seed=52, deadline=30.0)
                assert cheap.breaker_state == "open"
                assert cheap.degraded
                assert cheap.scores.trials_completed == 8
                assert cheap.scores.achieved_epsilon == pytest.approx(
                    engine.params.achieved_epsilon(
                        max(serve_graph.num_nodes, 2), 8
                    )
                )
                assert cheap.scores.tobytes() == cheap_oracle.tobytes()
                assert engine.stats()["breaker_degraded"] == 1

                # After the cooldown the next query is the half-open
                # probe; fault ordinal 2 is unplanned, so it succeeds at
                # full size and closes the breaker.
                time.sleep(0.6)
                assert engine.stats()["breaker_state"] == "half-open"
                probe = engine.query(161, seed=53, deadline=30.0)
                assert probe.breaker_state == "half-open"
                assert not probe.degraded
                assert probe.scores.tobytes() == probe_oracle.tobytes()
                stats = engine.stats()
                assert stats["breaker_state"] == "closed"
                assert stats["breaker_probes"] == 1
                assert engine.readiness()[0]

                # Back to normal full-size serving.
                after = engine.query(162, seed=54, deadline=30.0)
                assert after.breaker_state == "closed"

    def test_failed_probe_reopens(self, serve_graph):
        plan = {
            "executor_stall": {
                str(i): {"kind": "delay", "seconds": 1.0} for i in range(3)
            }
        }
        with faults.active(plan):
            with Engine(serve_graph, self._config()) as engine:
                for seed in (60, 61):
                    with pytest.raises(DeadlineExceededError):
                        engine.query(150, seed=seed, deadline=0.25)
                assert engine.stats()["breaker_state"] == "open"
                time.sleep(0.6)
                # The probe itself hits the third stall and fails.
                with pytest.raises(DeadlineExceededError):
                    engine.query(151, seed=62, deadline=0.25)
                stats = engine.stats()
                assert stats["breaker_state"] == "open"
                assert stats["breaker_trips"] == 2
                assert stats["breaker_probes"] == 1


class TestWatchdog:
    @pytest.mark.filterwarnings(
        # The injected raise is *supposed* to escape the dispatcher thread.
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_dispatcher_kill_loses_no_queued_request(self, serve_graph):
        seeds = {101: 150, 102: 151, 103: 152}
        oracles = {
            seed: _solo(serve_graph, source, seed)
            for seed, source in seeds.items()
        }
        config = EngineConfig(
            n_r=32,
            batch_window=0.0,
            max_batch=1,
            seed=1234,
            watchdog_interval=0.02,
        )
        # Iteration 0 runs at startup; iterations 0 and 1 each serve one
        # request (max_batch=1); the raise at iteration 2 kills the
        # dispatcher *before* it pops the third request.
        plan = {"dispatcher": {"2": {"kind": "raise"}}}
        with faults.active(plan):
            with Engine(serve_graph, config) as engine:
                futures = {
                    seed: engine.submit(QueryRequest.make(source, seed=seed))
                    for seed, source in seeds.items()
                }
                for seed, future in futures.items():
                    result = future.result(timeout=60)
                    assert result.scores.tobytes() == oracles[seed].tobytes()
        stats = engine.stats()
        assert stats["dispatcher_restarts"] == 1
        assert stats["queries"] == 3

    def test_hung_dispatcher_is_replaced(self, serve_graph):
        oracle = _solo(serve_graph, 151, 112)
        config = EngineConfig(
            n_r=32,
            batch_window=0.0,
            max_batch=1,
            seed=1234,
            watchdog_interval=0.05,
            dispatcher_stall_timeout=0.25,
        )
        plan = {"dispatcher": {"1": {"kind": "delay", "seconds": 3.0}}}
        with faults.active(plan):
            with Engine(serve_graph, config) as engine:
                engine.query(150, seed=111)  # served by iteration 0
                # Iteration 1 is now sleeping inside the injected delay;
                # this request sits queued until the watchdog declares the
                # dispatcher hung and replaces it.
                started = time.monotonic()
                result = engine.query(151, seed=112, timeout=60)
                elapsed = time.monotonic() - started
                assert result.scores.tobytes() == oracle.tobytes()
                assert elapsed < 2.5, "answer waited for the full hang"
        assert engine.stats()["dispatcher_restarts"] == 1

    def test_stalled_executor_fails_only_the_inflight_request(
        self, serve_graph
    ):
        oracle = _solo(serve_graph, 151, 122)
        config = EngineConfig(
            n_r=32,
            batch_window=0.0,
            seed=1234,
            workers=1,
            watchdog_interval=0.05,
            dispatcher_stall_timeout=0.25,
        )
        plan = {"executor_stall": {"0": {"kind": "delay", "seconds": 2.0}}}
        with faults.active(plan):
            with Engine(serve_graph, config) as engine:
                future = engine.submit(
                    QueryRequest.make(150, seed=121, deadline=30.0)
                )
                with pytest.raises(DispatcherError):
                    future.result(timeout=60)
                # The replacement dispatcher keeps serving.
                result = engine.query(151, seed=122, timeout=60)
                assert result.scores.tobytes() == oracle.tobytes()
                assert engine.stats()["dispatcher_restarts"] == 1


class TestCloseSemantics:
    def test_concurrent_close_drains_once(self, serve_graph):
        config = EngineConfig(n_r=32, batch_window=0.002, seed=1234)
        engine = Engine(serve_graph, config)
        futures = [
            engine.submit(QueryRequest.make(150 + i, seed=200 + i))
            for i in range(6)
        ]
        errors = []

        def closer():
            try:
                engine.close(timeout=60)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "close() caller hung"
        assert not errors, errors
        assert engine.closed
        # Every request admitted before the close was answered.
        for i, future in enumerate(futures):
            result = future.result(timeout=1)
            oracle = _solo(serve_graph, 150 + i, 200 + i)
            assert result.scores.tobytes() == oracle.tobytes()
        stats = engine.stats()
        assert stats["queue_depth"] == 0
        assert stats["dispatcher_restarts"] == 0
        assert engine.registry.snapshot()["repro_engine_queue_depth"] == 0
        # Closing again is a cheap no-op; submitting is a clean rejection.
        engine.close()
        with pytest.raises(EngineClosedError):
            engine.submit(QueryRequest.make(150))
        assert engine.stats()["rejected"] == 1


class TestHttpOverload:
    @pytest.fixture
    def server(self, engine):
        server = create_server(engine, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def _url(self, server, path):
        host, port = server.server_address[:2]
        return f"http://{host}:{port}{path}"

    def _post(self, server, payload, headers=None):
        request = urllib.request.Request(
            self._url(server, "/v1/query"),
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())

    def test_deadline_header_flows_into_the_engine(
        self, server, serve_graph
    ):
        oracle = _solo(serve_graph, 3, 7, deadline=60.0)
        status, body = self._post(
            server,
            {"source": 3, "seed": 7},
            headers={"X-Repro-Deadline": "60"},
        )
        assert status == 200
        assert body["degraded"] is False
        assert body["breaker_state"] == "closed"
        assert body["scores"] == [float(s) for s in oracle]

    def test_expired_deadline_header_is_504_without_engine_work(
        self, server, engine
    ):
        before = engine.stats()["deadline_queries"]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(
                server,
                {"source": 3, "seed": 7},
                headers={"X-Repro-Deadline": "-1"},
            )
        assert excinfo.value.code == 504
        assert engine.stats()["deadline_queries"] == before

    def test_malformed_deadline_header_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(
                server,
                {"source": 3, "seed": 7},
                headers={"X-Repro-Deadline": "soon"},
            )
        assert excinfo.value.code == 400

    def test_healthz_stays_live_while_readyz_reports_draining(
        self, serve_graph
    ):
        config = EngineConfig(n_r=32, batch_window=0.0, seed=1234)
        engine = Engine(serve_graph, config)
        server = create_server(engine, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(
                self._url(server, "/readyz"), timeout=30
            ) as response:
                assert response.status == 200
                assert json.loads(response.read())["status"] == "ready"
            engine.close()
            # Liveness survives the drain; readiness flips to 503 so load
            # balancers stop routing.
            with urllib.request.urlopen(
                self._url(server, "/healthz"), timeout=30
            ) as response:
                assert response.status == 200
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    self._url(server, "/readyz"), timeout=30
                )
            assert excinfo.value.code == 503
            assert json.loads(excinfo.value.read())["status"] == "draining"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            engine.close()

    def test_full_queue_maps_to_429_with_retry_after(self, serve_graph):
        config = EngineConfig(
            n_r=32, batch_window=0.0, seed=1234, max_queue_depth=1
        )
        plan = {"dispatcher": {"0": {"kind": "delay", "seconds": 2.0}}}
        with faults.active(plan):
            engine = Engine(serve_graph, config)
            server = create_server(engine, port=0)
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            try:
                filler = engine.submit(QueryRequest.make(150, seed=301))
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    self._post(server, {"source": 151, "seed": 302})
                assert excinfo.value.code == 429
                retry_header = excinfo.value.headers.get("Retry-After")
                assert retry_header is not None
                assert int(retry_header) >= 1
                body = json.loads(excinfo.value.read())
                assert body["retry_after"] > 0
                assert filler.result(timeout=30) is not None
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=10)
                engine.close()
        assert engine.stats()["overload_rejected"] == 1


class TestPublicExports:
    def test_overload_symbols_are_exported(self):
        import repro

        assert repro.EngineOverloadedError is EngineOverloadedError
        assert repro.DispatcherError is DispatcherError
        assert repro.BreakerState is BreakerState
        from repro.serve import SHED_POLICIES

        assert SHED_POLICIES == ("reject", "shed-oldest")
