"""Concurrency soak: many client threads hammering one resident engine.

What a soak can catch that unit tests cannot: cross-request state leakage
(a warm tree or kernel buffer from one request bleeding into another's
answer), lost wakeups in the dispatcher, and shutdown races.  Every request
here carries an explicit seed, so each has exactly one correct answer —
any leakage or reordering shows up as a byte-level mismatch against the
direct :func:`repro.api.single_source` oracle.

The chaos leg reuses :mod:`repro.faults` to SIGKILL a pool worker while an
engine batch is mid-flight and asserts the answer is still exact — the
executor's rebuild-and-retry must be invisible through the serving layer.

The observability leg runs the same soak behind the HTTP front door with
scraper threads hammering ``GET /metrics`` and ``GET /stats`` the whole
time: every scrape must be a valid Prometheus exposition, counters must
never run backwards, and the final totals must reconcile with the work
actually done.
"""

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro import api, faults, obs
from repro.core import CandidateTreeCache
from repro.errors import EngineClosedError
from repro.parallel import ParallelExecutor
from repro.serve import Engine, EngineConfig, QueryRequest, create_server

pytestmark = pytest.mark.timeout(300)

N_THREADS = 8
QUERIES_PER_THREAD = 6


def _workload(thread_id, catalog):
    """Thread ``thread_id``'s request specs: mixed candidates and sources."""
    specs = []
    for i in range(QUERIES_PER_THREAD):
        source = (thread_id * 7 + i * 3) % 120
        seed = thread_id * 1000 + i
        candidates = catalog if i % 2 == 0 else None
        specs.append((source, seed, candidates))
    return specs


class TestThreadedSoak:
    def test_soak_deterministic_answers_and_bounded_lru(
        self, serve_graph, catalog
    ):
        config = EngineConfig(
            n_r=32, batch_window=0.002, tree_cache_size=32, seed=7
        )
        answers = [None] * N_THREADS
        errors = []

        with Engine(serve_graph, config) as engine:

            def client(thread_id):
                try:
                    got = []
                    for source, seed, cands in _workload(thread_id, catalog):
                        result = engine.query(
                            source, seed=seed, candidates=cands, timeout=60
                        )
                        got.append(result)
                    answers[thread_id] = got
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(t,), daemon=True)
                for t in range(N_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
                assert not thread.is_alive(), "soak client hung"
            assert not errors, errors
            assert len(engine.trees) <= 32
            stats = engine.stats()
            assert stats["queries"] == N_THREADS * QUERIES_PER_THREAD

        # Every answer byte-matches its solo oracle — no cross-request
        # leakage through the shared kernel, tree LRU, or dispatcher.
        for thread_id in range(N_THREADS):
            for (source, seed, cands), result in zip(
                _workload(thread_id, catalog), answers[thread_id]
            ):
                direct = api.single_source(
                    serve_graph, source, n_r=32, seed=seed, candidates=cands
                )
                assert result.scores.tobytes() == direct.tobytes(), (
                    thread_id,
                    source,
                    seed,
                )

    def test_repeat_soak_same_seeds_same_bytes(self, serve_graph, catalog):
        # Two engines, same workload: identical answers — warm-state history
        # (which sources came earlier, what the LRU held) must not matter.
        def run_once():
            out = {}
            config = EngineConfig(n_r=32, batch_window=0.002, seed=3)
            with Engine(serve_graph, config) as engine:
                for thread_id in (0, 1, 2):
                    for source, seed, cands in _workload(thread_id, catalog):
                        result = engine.query(
                            source, seed=seed, candidates=cands, timeout=60
                        )
                        out[(thread_id, source, seed)] = (
                            result.scores.tobytes()
                        )
            return out

        assert run_once() == run_once()


def _parse_exposition(text):
    """Validate Prometheus text format 0.0.4; return ``{sample: value}``.

    Checks the structural invariants a scraper relies on: every sample
    line is ``name[{le="bound"}] value``, every sample's family carries a
    ``# TYPE`` line, histogram buckets are cumulative (non-decreasing in
    declaration order) with the ``+Inf`` bucket equal to ``_count``.
    """
    typed = {}
    samples = {}
    bucket_runs = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert kind in ("counter", "gauge", "histogram"), line
            typed[name] = kind
            continue
        assert not line.startswith("#"), f"unknown comment line: {line!r}"
        sample, _, raw = line.rpartition(" ")
        value = float(raw)
        samples[sample] = value
        family = sample.split("{")[0]
        for suffix in ("_bucket", "_sum", "_count"):
            if family.endswith(suffix) and family[: -len(suffix)] in typed:
                base = family[: -len(suffix)]
                assert typed[base] == "histogram", line
                if suffix == "_bucket":
                    bucket_runs.setdefault(base, []).append(value)
                break
        else:
            assert family in typed, f"sample without TYPE: {line!r}"
    for base, run in bucket_runs.items():
        assert run == sorted(run), f"{base} buckets not cumulative: {run}"
        assert run[-1] == samples[f"{base}_count"], base
    assert text.endswith("\n")
    return samples


class TestMetricsScrapeUnderLoad:
    def test_concurrent_scrapes_valid_and_monotonic(
        self, serve_graph, catalog
    ):
        previous = obs.set_enabled(True)
        config = EngineConfig(
            n_r=32, batch_window=0.002, tree_cache_size=32, seed=7
        )
        metrics_scrapes, stats_scrapes, errors = [], [], []
        stop_scraping = threading.Event()
        try:
            with Engine(serve_graph, config) as engine:
                server = create_server(engine, port=0)
                host, port = server.server_address[:2]
                base_url = f"http://{host}:{port}"
                server_thread = threading.Thread(
                    target=server.serve_forever,
                    kwargs={"poll_interval": 0.05},
                    daemon=True,
                )
                server_thread.start()
                try:

                    def scraper(path, out):
                        try:
                            while not stop_scraping.is_set():
                                with urllib.request.urlopen(
                                    base_url + path, timeout=30
                                ) as response:
                                    assert response.status == 200
                                    out.append(
                                        (
                                            response.headers.get(
                                                "Content-Type", ""
                                            ),
                                            response.read().decode("utf-8"),
                                        )
                                    )
                                time.sleep(0.003)
                        except BaseException as exc:  # pragma: no cover
                            errors.append(exc)

                    def client(thread_id):
                        try:
                            for source, seed, cands in _workload(
                                thread_id, catalog
                            ):
                                engine.query(
                                    source,
                                    seed=seed,
                                    candidates=cands,
                                    timeout=60,
                                )
                        except BaseException as exc:  # pragma: no cover
                            errors.append(exc)

                    scrapers = [
                        threading.Thread(
                            target=scraper,
                            args=("/metrics", metrics_scrapes),
                            daemon=True,
                        ),
                        threading.Thread(
                            target=scraper,
                            args=("/stats", stats_scrapes),
                            daemon=True,
                        ),
                    ]
                    clients = [
                        threading.Thread(
                            target=client, args=(t,), daemon=True
                        )
                        for t in range(N_THREADS)
                    ]
                    for thread in scrapers + clients:
                        thread.start()
                    for thread in clients:
                        thread.join(timeout=120)
                        assert not thread.is_alive(), "soak client hung"
                    stop_scraping.set()
                    for thread in scrapers:
                        thread.join(timeout=60)
                        assert not thread.is_alive(), "scraper hung"
                    assert not errors, errors
                    # One quiescent scrape of each endpoint after every
                    # query drained, for the final reconciliation.
                    with urllib.request.urlopen(
                        base_url + "/metrics", timeout=30
                    ) as response:
                        metrics_scrapes.append(
                            (
                                response.headers.get("Content-Type", ""),
                                response.read().decode("utf-8"),
                            )
                        )
                    with urllib.request.urlopen(
                        base_url + "/stats", timeout=30
                    ) as response:
                        stats_scrapes.append(
                            (
                                response.headers.get("Content-Type", ""),
                                response.read().decode("utf-8"),
                            )
                        )
                finally:
                    server.shutdown()
                    server.server_close()
        finally:
            obs.set_enabled(previous)

        # Every /metrics body is a structurally valid exposition with the
        # right content type, covering all four metric families.
        assert len(metrics_scrapes) >= 2
        parsed = []
        for content_type, body in metrics_scrapes:
            assert content_type.startswith("text/plain; version=0.0.4")
            parsed.append(_parse_exposition(body))
        for family in (
            "repro_kernel_walks_total",
            "repro_tree_lru_hits_total",
            "repro_executor_runs_total",
            "repro_engine_queries_total",
            "repro_engine_latency_seconds_count",
        ):
            assert family in parsed[-1], family

        # Counters never run backwards across a scraper's ordered scrapes.
        for name in (
            "repro_engine_queries_total",
            "repro_engine_batches_total",
            "repro_kernel_walks_total",
        ):
            series = [sample[name] for sample in parsed]
            assert series == sorted(series), (name, series)

        # /stats mirrors the same registry: its counters are monotonic
        # too, and both endpoints agree on the final totals.
        payloads = [json.loads(body) for _, body in stats_scrapes]
        queries_series = [payload["queries"] for payload in payloads]
        assert queries_series == sorted(queries_series)
        metric_series = [
            payload["metrics"]["repro_engine_queries_total"]
            for payload in payloads
        ]
        assert metric_series == sorted(metric_series)
        expected = N_THREADS * QUERIES_PER_THREAD
        assert parsed[-1]["repro_engine_queries_total"] == expected
        assert payloads[-1]["queries"] == expected
        assert payloads[-1]["metrics"]["repro_engine_queries_total"] == (
            expected
        )
        # The dispatcher drained everything: the queue-depth gauge is
        # back to zero and latency observations cover every query.
        assert parsed[-1]["repro_engine_queue_depth"] == 0
        assert parsed[-1]["repro_engine_latency_seconds_count"] == expected


class TestShutdownUnderLoad:
    def test_close_with_inflight_requests_drains_all(self, serve_graph):
        config = EngineConfig(n_r=32, batch_window=0.002, seed=5)
        engine = Engine(serve_graph, config)
        admitted = []
        rejected = threading.Event()
        stop_submitting = threading.Event()

        def submitter():
            source = 0
            while not stop_submitting.is_set():
                try:
                    future = engine.submit(
                        QueryRequest.make(source % 100, seed=source)
                    )
                    admitted.append((source % 100, source, future))
                except EngineClosedError:
                    rejected.set()
                    return
                source += 1

        threads = [
            threading.Thread(target=submitter, daemon=True) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        # Let a backlog build, then close while submissions are racing in.
        time.sleep(0.1)
        engine.close()
        stop_submitting.set()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        assert admitted, "no requests made it in before the close"
        # Every admitted request was answered, exactly.
        for source, seed, future in admitted:
            result = future.result(timeout=60)
            direct = api.single_source(serve_graph, source, n_r=32, seed=seed)
            assert result.scores.tobytes() == direct.tobytes()
        with pytest.raises(EngineClosedError):
            engine.submit(QueryRequest.make(0))


class TestChaosUnderLoad:
    def test_worker_killed_mid_batch_recovers_exactly(self, serve_graph):
        config = EngineConfig(n_r=64, workers=2, batch_window=0.002, seed=9)
        probe = ParallelExecutor(workers=2)
        serial = probe.serial
        probe.close()
        if serial:
            pytest.skip("process pools unavailable on this platform")
        baseline_config = EngineConfig(
            n_r=64, workers=2, batch_window=0.002, seed=9
        )
        with Engine(serve_graph, baseline_config) as engine:
            undisturbed = engine.query(8, seed=17, deadline=120.0, timeout=120)
        assert not undisturbed.degraded
        plan = {"shard": {"1": {"kind": "kill"}}}
        with faults.active(plan):
            with Engine(serve_graph, config) as engine:
                survivor = engine.query(
                    8, seed=17, deadline=120.0, timeout=120
                )
                # The engine (and its pool) outlives the crash: a second
                # query on the same executor still answers.
                follow_up = engine.query(9, seed=18, timeout=120)
        # All shards were retried to completion: the answer is exact, not
        # degraded, and byte-identical to the undisturbed run.
        assert not survivor.degraded
        assert survivor.scores.tobytes() == undisturbed.scores.tobytes()
        direct = api.single_source(serve_graph, 9, n_r=64, seed=18)
        assert follow_up.scores.tobytes() == direct.tobytes()


class TestCandidateTreeCacheThreadSafety:
    def test_concurrent_tree_for_no_leaks_or_corruption(self, serve_graph):
        cache = CandidateTreeCache()
        nodes = list(range(40))
        per_thread_trees = [None] * N_THREADS
        errors = []

        def hammer(slot):
            try:
                local = {}
                for _ in range(3):
                    for node in nodes:
                        tree = cache.tree_for(node, 0, serve_graph, 5, 0.6)
                        assert tree.source == node
                        local[node] = tree
                per_thread_trees[slot] = local
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(s,), daemon=True)
            for s in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        assert not errors, errors
        # No leakage: one entry per node, never more.
        assert len(cache) == len(nodes)
        # Accounting adds up: every call was either a hit or (at most a
        # handful of racing duplicate) builds; duplicates are discarded,
        # never stored.
        total_calls = N_THREADS * 3 * len(nodes)
        assert cache.hits + cache.builds == total_calls
        assert cache.builds >= len(nodes)
        # All threads converged on the same stored trees by the last round.
        reference = per_thread_trees[0]
        for local in per_thread_trees[1:]:
            for node in nodes:
                assert local[node].same_as(reference[node])

    def test_clone_and_retain_under_concurrent_reads(self, serve_graph):
        cache = CandidateTreeCache()
        for node in range(20):
            cache.tree_for(node, 0, serve_graph, 5, 0.6)
        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    cache.tree_for(3, 0, serve_graph, 5, 0.6)
                    len(cache)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, daemon=True) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        try:
            for _ in range(50):
                clone = cache.clone()
                assert len(clone) <= 20
                cache.retain(range(20))
        finally:
            stop.set()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()
        assert not errors, errors
