"""Engine unit behaviour: answers, warm state, lifecycle, HTTP front door.

The deeper guarantees — batch-composition invariance and concurrency
safety — live in ``test_batching_properties.py`` and ``test_soak.py``;
this file pins the request/response surface a client programs against.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import api
from repro.errors import (
    DeadlineExceededError,
    EngineClosedError,
    ParameterError,
)
from repro.serve import Engine, EngineConfig, QueryRequest, TreeLRU, create_server

pytestmark = pytest.mark.timeout(120)


class TestAnswers:
    def test_dense_vector_matches_direct_call(self, engine, serve_graph):
        result = engine.query(4, seed=99)
        direct = api.single_source(serve_graph, 4, n_r=32, seed=99)
        assert result.scores.tobytes() == direct.tobytes()
        assert result.scores[4] == 1.0
        assert result.scores.shape == (serve_graph.num_nodes,)

    def test_candidate_restricted_query(self, engine, serve_graph, catalog):
        result = engine.query(7, seed=5, candidates=catalog)
        direct = api.single_source(
            serve_graph, 7, n_r=32, seed=5, candidates=catalog
        )
        assert result.scores.tobytes() == direct.tobytes()
        outside = np.setdiff1d(
            np.arange(serve_graph.num_nodes), np.array(catalog + (7,))
        )
        assert not np.any(result.scores[outside])

    def test_seedless_answer_is_replayable(self, engine, serve_graph):
        result = engine.query(3)
        assert result.seed is not None
        replay = api.single_source(serve_graph, 3, n_r=32, seed=result.seed)
        assert result.scores.tobytes() == replay.tobytes()

    def test_top_k_ranking(self, engine):
        result = engine.query(2, seed=11, top_k=5)
        assert len(result.top) == 5
        nodes = [node for node, _ in result.top]
        assert 2 not in nodes
        scores = [score for _, score in result.top]
        assert scores == sorted(scores, reverse=True)
        dense = np.asarray(result.scores).copy()
        dense[2] = -np.inf
        assert result.top[0][1] == dense.max()

    def test_deadline_request_degrades_not_fails(self, engine, serve_graph):
        # A generous deadline: completes fully and byte-matches the direct
        # deadline call (same seed-shard scheme at any worker count).
        result = engine.query(6, seed=21, deadline=60.0)
        direct = api.single_source(serve_graph, 6, n_r=32, seed=21, deadline=60.0)
        assert result.scores.tobytes() == direct.tobytes()
        assert not result.degraded

    def test_deadline_already_spent_in_queue(self, engine):
        request = QueryRequest.make(1, deadline=1e-9)
        future = engine.submit(request)
        with pytest.raises(DeadlineExceededError):
            future.result(timeout=30)

    def test_bad_source_rejected_at_submit(self, engine, serve_graph):
        with pytest.raises(ParameterError):
            engine.submit(QueryRequest.make(serve_graph.num_nodes + 5))

    def test_bad_request_fails_only_itself(self, engine, serve_graph, catalog):
        # An out-of-range candidate set passes submit but fails scoring;
        # batch-mates must still be answered.
        bad = engine.submit(
            QueryRequest.make(1, candidates=(serve_graph.num_nodes + 7,), seed=3)
        )
        good = engine.submit(QueryRequest.make(2, candidates=catalog, seed=3))
        with pytest.raises(ParameterError):
            bad.result(timeout=30)
        result = good.result(timeout=30)
        direct = api.single_source(
            serve_graph, 2, n_r=32, seed=3, candidates=catalog
        )
        assert result.scores.tobytes() == direct.tobytes()


class TestWarmState:
    def test_tree_lru_hits_on_repeat_source(self, engine):
        engine.query(5, seed=1)
        misses = engine.trees.misses
        engine.query(5, seed=2)
        assert engine.trees.misses == misses
        assert engine.trees.hits >= 1

    def test_tree_lru_capacity_bounded(self, serve_graph, engine_config):
        config = EngineConfig(n_r=32, tree_cache_size=4, seed=0)
        with Engine(serve_graph, config) as engine:
            for source in range(10):
                engine.query(source, seed=source)
            assert len(engine.trees) <= 4

    def test_tree_lru_eviction_order(self, serve_graph):
        lru = TreeLRU(serve_graph, 5, 0.6, capacity=2)
        first = lru.get(1)
        lru.get(2)
        lru.get(1)  # refresh 1 → 2 is now the eviction victim
        lru.get(3)
        assert lru.get(1) is first
        assert set() == {2} & {k for k in lru._entries}

    def test_stats_counters(self, engine):
        engine.query(1, seed=1)
        engine.query(2, seed=2, deadline=60.0)
        stats = engine.stats()
        assert stats["queries"] >= 2
        assert stats["deadline_queries"] == 1
        assert stats["tree_cache_size"] >= 1


class TestLifecycle:
    def test_close_is_idempotent(self, serve_graph, engine_config):
        engine = Engine(serve_graph, engine_config)
        engine.query(1, seed=1)
        engine.close()
        engine.close()
        assert engine.closed

    def test_submit_after_close_raises(self, serve_graph, engine_config):
        engine = Engine(serve_graph, engine_config)
        engine.close()
        with pytest.raises(EngineClosedError):
            engine.submit(QueryRequest.make(0))

    def test_close_drains_queued_requests(self, serve_graph, engine_config):
        # Admit a burst, close immediately: every admitted future resolves.
        engine = Engine(serve_graph, engine_config)
        futures = [
            engine.submit(QueryRequest.make(source, seed=source))
            for source in range(12)
        ]
        engine.close()
        for source, future in enumerate(futures):
            result = future.result(timeout=30)
            direct = api.single_source(serve_graph, source, n_r=32, seed=source)
            assert result.scores.tobytes() == direct.tobytes()


class TestHttpFrontDoor:
    @pytest.fixture
    def server(self, engine):
        server = create_server(engine, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server
        finally:
            server.shutdown()
            server.server_close()

    def _post(self, server, payload):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/query",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return json.loads(response.read())

    def _get(self, server, path):
        host, port = server.server_address[:2]
        with urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=30
        ) as response:
            return json.loads(response.read())

    def test_query_roundtrip_matches_direct_call(self, server, serve_graph):
        body = self._post(server, {"source": 3, "seed": 7})
        direct = api.single_source(serve_graph, 3, n_r=32, seed=7)
        assert body["scores"] == [float(s) for s in direct]
        assert body["trials_completed"] == direct.trials_completed

    def test_top_k_response(self, server):
        body = self._post(server, {"source": 1, "seed": 2, "top_k": 4})
        assert len(body["top"]) == 4
        assert "scores" not in body

    def test_healthz_and_stats(self, server):
        assert self._get(server, "/healthz")["status"] == "ok"
        stats = self._get(server, "/stats")
        assert "queries" in stats

    def test_malformed_request_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server, {"no_source": True})
        assert excinfo.value.code == 400

    def test_out_of_range_source_is_400(self, server, serve_graph):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server, {"source": serve_graph.num_nodes + 1})
        assert excinfo.value.code == 400
