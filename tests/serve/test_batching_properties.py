"""Batch-composition invariance: batching must never change an answer.

The engine coalesces whatever happens to share its queue when a batching
window closes — so correctness demands that *no* partition of a set of
requests into batches, and no companion riding in the same batch, can
change any request's scores.  Two layers are pinned:

* :func:`repro.core.batch.crashsim_batch` directly: for a random query
  list and a *random partition* of it into sub-batches, every result is
  byte-identical to the sequential :func:`~repro.core.crashsim.crashsim`
  call — coalesced or solo, shared catalogue or per-query candidates.
* The full :class:`~repro.serve.Engine`: concurrently submitted seeded
  requests (mixed samplers and deadlines, which must not coalesce with
  the plain ones) come back byte-identical to direct
  :func:`repro.api.single_source` calls, whatever batches the window
  produced.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import api
from repro.core import BatchQuery, CrashSimParams, crashsim, crashsim_batch
from repro.graph.generators import preferential_attachment
from repro.serve import Engine, EngineConfig, QueryRequest

pytestmark = pytest.mark.timeout(300)

N_NODES = 120
N_R = 24
PARAMS = CrashSimParams(n_r_override=N_R)
GRAPH = preferential_attachment(N_NODES, 3, seed=5)
CATALOG = tuple(range(60, 120))
SMALL_SET = tuple(range(80, 100))

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _query_strategy():
    source = st.integers(min_value=0, max_value=49)
    seed = st.integers(min_value=0, max_value=2**31)
    candidates = st.sampled_from([None, CATALOG, SMALL_SET])
    return st.builds(
        lambda s, sd, cand: BatchQuery(s, seed=sd, candidates=cand),
        source,
        seed,
        candidates,
    )


def _partition(items, cut_points):
    """Split ``items`` at the (sorted, deduplicated) cut indices."""
    cuts = sorted({c % (len(items) + 1) for c in cut_points})
    pieces, start = [], 0
    for cut in cuts:
        if start < cut:
            pieces.append(items[start:cut])
            start = cut
    if start < len(items):
        pieces.append(items[start:])
    return pieces or [items]


class TestCrashsimBatchInvariance:
    @SETTINGS
    @given(
        queries=st.lists(_query_strategy(), min_size=1, max_size=8),
        cut_points=st.lists(
            st.integers(min_value=0, max_value=8), max_size=4
        ),
    )
    def test_any_partition_matches_sequential(self, queries, cut_points):
        expected = [
            crashsim(
                GRAPH,
                q.source,
                candidates=q.candidates,
                params=PARAMS,
                seed=q.seed,
            )
            for q in queries
        ]
        got = []
        for piece in _partition(queries, cut_points):
            got.extend(crashsim_batch(GRAPH, piece, params=PARAMS))
        assert len(got) == len(expected)
        for solo, batched in zip(expected, got):
            assert batched.scores.tobytes() == solo.scores.tobytes()
            assert np.array_equal(batched.candidates, solo.candidates)

    @SETTINGS
    @given(
        sources=st.lists(
            st.integers(min_value=0, max_value=49),
            min_size=2,
            max_size=6,
        ),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_shared_catalogue_coalesces_and_matches(self, sources, seed):
        queries = [
            BatchQuery(s, seed=seed, candidates=CATALOG) for s in sources
        ]
        stats = {}
        results = crashsim_batch(GRAPH, queries, params=PARAMS, stats=stats)
        # Identical seed + identical walk targets → one shared walk group.
        assert stats["coalesced_queries"] == len(queries)
        for query, result in zip(queries, results):
            solo = crashsim(
                GRAPH,
                query.source,
                candidates=CATALOG,
                params=PARAMS,
                seed=seed,
            )
            assert result.scores.tobytes() == solo.scores.tobytes()

    @SETTINGS
    @given(
        seed_a=st.integers(min_value=0, max_value=1000),
        seed_b=st.integers(min_value=1001, max_value=2000),
    )
    def test_distinct_seeds_never_coalesce(self, seed_a, seed_b):
        queries = [
            BatchQuery(1, seed=seed_a, candidates=CATALOG),
            BatchQuery(2, seed=seed_b, candidates=CATALOG),
        ]
        stats = {}
        results = crashsim_batch(GRAPH, queries, params=PARAMS, stats=stats)
        assert stats["coalesced_queries"] == 0
        assert stats["solo_queries"] == 2
        for query, result in zip(queries, results):
            solo = crashsim(
                GRAPH,
                query.source,
                candidates=CATALOG,
                params=PARAMS,
                seed=query.seed,
            )
            assert result.scores.tobytes() == solo.scores.tobytes()

    def test_generator_seed_consumed_like_solo_call(self):
        queries = [BatchQuery(3, seed=np.random.default_rng(77))]
        results = crashsim_batch(GRAPH, queries, params=PARAMS)
        solo = crashsim(
            GRAPH, 3, params=PARAMS, seed=np.random.default_rng(77)
        )
        assert results[0].scores.tobytes() == solo.scores.tobytes()


class TestEngineInvariance:
    """The engine end: concurrent submissions vs direct api calls."""

    @SETTINGS
    @given(
        specs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=49),  # source
                st.integers(min_value=0, max_value=2**31),  # seed
                st.sampled_from([None, CATALOG]),  # candidates
                st.sampled_from(["cdf", "alias"]),  # sampler
            ),
            min_size=1,
            max_size=8,
        ),
        batch_window=st.sampled_from([0.0, 0.005]),
        max_batch=st.integers(min_value=1, max_value=8),
    )
    def test_concurrent_mixed_requests_match_direct_calls(
        self, specs, batch_window, max_batch
    ):
        config = EngineConfig(
            n_r=N_R, batch_window=batch_window, max_batch=max_batch, seed=0
        )
        with Engine(GRAPH, config) as engine:
            futures = [
                engine.submit(
                    QueryRequest.make(
                        source, seed=seed, candidates=cand, sampler=sampler
                    )
                )
                for source, seed, cand, sampler in specs
            ]
            results = [f.result(timeout=60) for f in futures]
        for (source, seed, cand, sampler), result in zip(specs, results):
            direct = api.single_source(
                GRAPH,
                source,
                n_r=N_R,
                seed=seed,
                candidates=cand,
                sampler=sampler,
            )
            assert result.scores.tobytes() == direct.tobytes()

    def test_deadline_requests_do_not_coalesce(self):
        # A deadline request in the same window as coalescible companions
        # is served individually (never batched) and still byte-matches
        # the direct deadline call.
        config = EngineConfig(n_r=N_R, batch_window=0.05, seed=0)
        with Engine(GRAPH, config) as engine:
            futures = [
                engine.submit(
                    QueryRequest.make(s, seed=9, candidates=CATALOG)
                )
                for s in (1, 2, 3)
            ]
            hurried = engine.submit(
                QueryRequest.make(4, seed=9, candidates=CATALOG, deadline=60.0)
            )
            results = [f.result(timeout=60) for f in futures]
            special = hurried.result(timeout=60)
        assert not special.coalesced
        assert special.batch_size == 1
        direct = api.single_source(
            GRAPH, 4, n_r=N_R, seed=9, candidates=CATALOG, deadline=60.0
        )
        assert special.scores.tobytes() == direct.tobytes()
        for source, result in zip((1, 2, 3), results):
            direct = api.single_source(
                GRAPH, source, n_r=N_R, seed=9, candidates=CATALOG
            )
            assert result.scores.tobytes() == direct.tobytes()

    def test_mixed_samplers_in_one_window_stay_separate(self):
        config = EngineConfig(n_r=N_R, batch_window=0.05, seed=0)
        with Engine(GRAPH, config) as engine:
            futures = {
                sampler: engine.submit(
                    QueryRequest.make(5, seed=13, sampler=sampler)
                )
                for sampler in ("cdf", "alias")
            }
            results = {
                sampler: future.result(timeout=60)
                for sampler, future in futures.items()
            }
        for sampler, result in results.items():
            direct = api.single_source(
                GRAPH, 5, n_r=N_R, seed=13, sampler=sampler
            )
            assert result.scores.tobytes() == direct.tobytes()
