"""Tests for the incremental source-tree gate (tree_unaffected_by_delta)."""

import numpy as np
import pytest

from repro.core.crashsim_t import crashsim_t
from repro.core.params import CrashSimParams
from repro.core.pruning import tree_unaffected_by_delta
from repro.core.queries import ThresholdQuery
from repro.core.revreach import revreach_levels
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.graph.generators import evolve_snapshots, preferential_attachment
from repro.graph.temporal import TemporalGraphBuilder


class TestGateExactness:
    def test_gate_implies_identical_tree(self, small_random_graph):
        """Whenever the gate says 'unaffected', rebuilding on the changed
        graph must reproduce the tree bit-for-bit (exactness, not a
        heuristic)."""
        graph = small_random_graph
        l_max, c = 12, 0.6
        rng = np.random.default_rng(0)
        checked = 0
        for _ in range(40):
            source = int(rng.integers(0, graph.num_nodes))
            tree = revreach_levels(graph, source, l_max, c)
            edge = (
                int(rng.integers(0, graph.num_nodes)),
                int(rng.integers(0, graph.num_nodes)),
            )
            if edge[0] == edge[1] or graph.has_edge(*edge):
                continue
            builder = GraphBuilder.from_graph(graph)
            builder.add_edge(edge[0], edge[1])
            changed = builder.build()
            if tree_unaffected_by_delta(tree, [edge], []):
                rebuilt = revreach_levels(changed, source, l_max, c)
                assert rebuilt.same_as(tree), (source, edge)
                checked += 1
        assert checked > 0  # the property was actually exercised

    def test_gate_detects_touching_change(self):
        # Chain 0 <- 1 <- 2: node 1 is occupied at step 1, so an edge into
        # node 1 must trip the gate.
        graph = DiGraph.from_edges(4, [(1, 0), (2, 1)])
        tree = revreach_levels(graph, 0, 3, 0.6)
        assert not tree_unaffected_by_delta(tree, [(3, 1)], [])
        # Node 3 is never occupied: edges into it are invisible.
        assert tree_unaffected_by_delta(tree, [(2, 3)], [])

    def test_removed_edges_checked_too(self):
        graph = DiGraph.from_edges(3, [(1, 0), (2, 1)])
        tree = revreach_levels(graph, 0, 3, 0.6)
        assert not tree_unaffected_by_delta(tree, [], [(2, 1)])

    def test_undirected_checks_both_endpoints(self):
        graph = DiGraph.from_edges(4, [(0, 1)], directed=False)
        tree = revreach_levels(graph, 0, 3, 0.6)
        # Node 1 is occupied; the canonical edge (1, 2) has occupied tail.
        assert not tree_unaffected_by_delta(
            tree, [(1, 2)], [], directed=False
        )
        assert tree_unaffected_by_delta(tree, [(2, 3)], [], directed=False)

    def test_last_level_occupancy_is_irrelevant(self):
        # A node first occupied exactly at step l_max cannot propagate
        # further, so changing its in-edges leaves the truncated tree alone.
        graph = DiGraph.from_edges(5, [(1, 0), (2, 1), (3, 2)])
        tree = revreach_levels(graph, 0, 2, 0.6)  # occupancy: 0,1,2
        assert tree_unaffected_by_delta(tree, [(4, 2)], [])
        rebuilt_graph = DiGraph.from_edges(5, [(1, 0), (2, 1), (3, 2), (4, 2)])
        rebuilt = revreach_levels(rebuilt_graph, 0, 2, 0.6)
        assert rebuilt.same_as(tree)


class TestIncrementalUpdate:
    def test_matches_full_rebuild_on_random_changes(self, small_random_graph):
        from repro.core.revreach import revreach_update

        graph = small_random_graph
        l_max, c = 12, 0.6
        rng = np.random.default_rng(3)
        checked = 0
        for _ in range(30):
            source = int(rng.integers(0, graph.num_nodes))
            tree = revreach_levels(graph, source, l_max, c)
            builder = GraphBuilder.from_graph(graph)
            edge = (
                int(rng.integers(0, graph.num_nodes)),
                int(rng.integers(0, graph.num_nodes)),
            )
            if edge[0] == edge[1]:
                continue
            if graph.has_edge(*edge):
                builder.remove_edge(*edge)
                added, removed = [], [edge]
            else:
                builder.add_edge(*edge)
                added, removed = [edge], []
            changed = builder.build()
            updated = revreach_update(tree, changed, added, removed)
            rebuilt = revreach_levels(changed, source, l_max, c)
            assert np.array_equal(updated.matrix, rebuilt.matrix), (
                source,
                edge,
            )
            checked += 1
        assert checked > 10

    def test_untouched_delta_returns_same_object(self):
        from repro.core.revreach import revreach_update

        graph = DiGraph.from_edges(5, [(1, 0), (2, 1)])
        tree = revreach_levels(graph, 0, 4, 0.6)
        new_graph = DiGraph.from_edges(5, [(1, 0), (2, 1), (4, 3)])
        assert revreach_update(tree, new_graph, [(4, 3)], []) is tree

    def test_paper_variant_rejected(self, paper_graph):
        from repro.core.revreach import revreach_update

        tree = revreach_levels(paper_graph, 0, 3, 0.25, variant="paper")
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            revreach_update(tree, paper_graph, [(0, 1)], [])

    def test_undirected_checks_both_endpoints(self):
        from repro.core.revreach import revreach_update

        old = DiGraph.from_edges(4, [(0, 1)], directed=False)
        tree = revreach_levels(old, 0, 3, 0.6)
        new = DiGraph.from_edges(4, [(0, 1), (1, 2)], directed=False)
        updated = revreach_update(
            tree, new, [(1, 2)], [], directed=False
        )
        rebuilt = revreach_levels(new, 0, 3, 0.6)
        assert np.array_equal(updated.matrix, rebuilt.matrix)


class TestGateInCrashSimT:
    def build_quiet_workload(self):
        base = preferential_attachment(120, 3, directed=True, seed=5)
        return evolve_snapshots(base, 6, churn_rate=0.001, seed=6)

    def test_gated_and_ungated_runs_agree(self):
        temporal = self.build_quiet_workload()
        params = CrashSimParams(c=0.6, epsilon=0.1, n_r_override=200)
        query = ThresholdQuery(theta=0.05)
        gated = crashsim_t(
            temporal, 3, query, params=params, seed=7, incremental_tree_gate=True
        )
        ungated = crashsim_t(
            temporal, 3, query, params=params, seed=7, incremental_tree_gate=False
        )
        # The gate is exact, so both runs see identical trees, hence make
        # identical pruning decisions and consume identical randomness.
        assert gated.survivors == ungated.survivors
        assert gated.history == ungated.history

    def test_gate_reuses_trees(self):
        builder = TemporalGraphBuilder(6, directed=True)
        base = [(2, 0), (2, 1), (3, 1)]
        builder.push_snapshot(base)
        builder.push_snapshot(base + [(5, 4)])  # far from source 0's tree
        temporal = builder.build()
        result = crashsim_t(
            temporal,
            0,
            ThresholdQuery(theta=0.0),
            params=CrashSimParams(c=0.6, epsilon=0.1, n_r_override=100),
            seed=8,
        )
        assert result.stats.source_tree_reused == 1
