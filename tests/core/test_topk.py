"""Tests for the adaptive top-k query."""

import numpy as np
import pytest

from repro.baselines.power_method import power_method_all_pairs
from repro.core.params import CrashSimParams
from repro.core.topk import crashsim_topk
from repro.errors import ParameterError

PARAMS = CrashSimParams(c=0.6, epsilon=0.05, n_r_override=800)


class TestRanking:
    def test_recovers_exact_topk(self, medium_random_graph):
        graph = medium_random_graph
        truth = power_method_all_pairs(graph, 0.6)
        source = 0
        k = 5
        result = crashsim_topk(graph, source, k, params=PARAMS, seed=3)
        exact_order = np.argsort(-truth[source])
        exact_top = [int(v) for v in exact_order if v != source][:k]
        overlap = len(set(result.nodes()) & set(exact_top))
        assert overlap >= k - 1, (result.nodes(), exact_top)

    def test_ranking_sorted_descending(self, medium_random_graph):
        result = crashsim_topk(medium_random_graph, 1, 8, params=PARAMS, seed=4)
        scores = [score for _, score in result.ranking]
        assert scores == sorted(scores, reverse=True)

    def test_pruning_reduces_candidates(self):
        # Screening can only separate candidates when similarities have
        # contrast: a cluster of 10 nodes sharing the source's in-hubs
        # (sim ≈ 0.3+) against ~90 chain nodes with sim 0.
        from repro.graph.digraph import DiGraph

        edges = [(10, v) for v in range(10)] + [(11, v) for v in range(10)]
        edges += [(v, v + 1) for v in range(12, 99)]
        graph = DiGraph.from_edges(100, edges)
        result = crashsim_topk(graph, 0, 3, params=PARAMS, seed=5)
        assert result.candidates_after_pruning < graph.num_nodes // 2
        # Everything in the ranking comes from the hub cluster.
        assert set(result.nodes()) <= set(range(1, 10))

    def test_k_larger_than_graph(self, paper_graph):
        result = crashsim_topk(paper_graph, 0, 100, params=PARAMS, seed=6)
        assert len(result.ranking) <= paper_graph.num_nodes - 1

    def test_trial_budget_respected(self, paper_graph):
        result = crashsim_topk(paper_graph, 0, 3, params=PARAMS, seed=7)
        assert result.trials_spent <= PARAMS.n_r_override + 1


class TestValidation:
    def test_invalid_k(self, paper_graph):
        with pytest.raises(ParameterError):
            crashsim_topk(paper_graph, 0, 0, params=PARAMS)

    def test_invalid_fraction(self, paper_graph):
        with pytest.raises(ParameterError):
            crashsim_topk(
                paper_graph, 0, 3, params=PARAMS, screening_fraction=1.0
            )

    def test_deterministic(self, paper_graph):
        a = crashsim_topk(paper_graph, 0, 3, params=PARAMS, seed=8)
        b = crashsim_topk(paper_graph, 0, 3, params=PARAMS, seed=8)
        assert a.ranking == b.ranking
