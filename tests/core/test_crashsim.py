"""Tests for the CrashSim estimator (Algorithm 1)."""

import numpy as np
import pytest

from repro.baselines.power_method import power_method_all_pairs
from repro.core.crashsim import CrashSimResult, crashsim
from repro.core.params import CrashSimParams
from repro.core.revreach import revreach_levels
from repro.errors import ParameterError


def dense_scores(graph, result):
    scores = np.zeros(graph.num_nodes)
    scores[result.candidates] = result.scores
    return scores


class TestAccuracy:
    def test_matches_power_method_on_random_graph(self, medium_random_graph):
        graph = medium_random_graph
        truth = power_method_all_pairs(graph, 0.6)
        params = CrashSimParams(c=0.6, epsilon=0.025, n_r_override=1500)
        for source in (0, 17, 123):
            result = crashsim(graph, source, params=params, seed=99)
            estimate = dense_scores(graph, result)
            estimate[source] = 1.0
            # The literal estimator over-counts pairs of walks that meet
            # more than once (hub neighbourhoods); 0.05 bounds bias + noise.
            error = np.abs(truth[source] - estimate).max()
            assert error < 0.05, f"source {source}: ME {error}"

    def test_tiny_pair_graph_value(self, tiny_pair_graph):
        # sim(0, 1) = c exactly: both walk to node 2 at step 1 and stop.
        params = CrashSimParams(c=0.36, epsilon=0.05, n_r_override=4000)
        result = crashsim(tiny_pair_graph, 0, params=params, seed=5)
        assert result.score(1) == pytest.approx(0.36, abs=0.03)
        assert result.score(2) == 0.0  # node 2's walks can never meet 0's

    def test_dp_mode_unbiased_on_cyclic_graph(self, paper_graph):
        # The example graph is small and cyclic: multi-meeting overcounting
        # is large for the paper-literal mode, while the DP correction must
        # stay within Monte-Carlo noise of the truth.
        truth = power_method_all_pairs(paper_graph, 0.6)
        params = CrashSimParams(c=0.6, epsilon=0.025, n_r_override=3000)
        literal = crashsim(paper_graph, 0, params=params, seed=3)
        exact = crashsim(
            paper_graph, 0, params=params, first_meeting="dp", seed=3
        )
        literal_err = np.abs(truth[0] - dense_scores(paper_graph, literal))[1:].max()
        exact_err = np.abs(truth[0] - dense_scores(paper_graph, exact))[1:].max()
        assert exact_err < 0.02
        assert exact_err < literal_err

    def test_undirected_graph(self, small_undirected_graph):
        graph = small_undirected_graph
        truth = power_method_all_pairs(graph, 0.6)
        params = CrashSimParams(n_r_override=2000)
        result = crashsim(graph, 3, params=params, seed=11)
        estimate = dense_scores(graph, result)
        estimate[3] = 1.0
        # Undirected small-world graphs have heavy multi-meeting bias for
        # the literal estimator; the check is correspondingly loose.
        assert np.abs(truth[3] - estimate).max() < 0.12

    def test_scores_clipped_to_unit_interval(self, paper_graph):
        result = crashsim(
            paper_graph, 0, params=CrashSimParams(n_r_override=50), seed=0
        )
        assert np.all(result.scores >= 0.0)
        assert np.all(result.scores <= 1.0)


class TestCandidates:
    def test_default_excludes_source(self, paper_graph):
        result = crashsim(
            paper_graph, 2, params=CrashSimParams(n_r_override=10), seed=0
        )
        assert 2 not in result.candidates
        assert result.candidates.size == paper_graph.num_nodes - 1

    def test_partial_candidate_set(self, paper_graph):
        result = crashsim(
            paper_graph,
            0,
            candidates=[3, 5],
            params=CrashSimParams(n_r_override=10),
            seed=0,
        )
        assert result.candidates.tolist() == [3, 5]

    def test_source_in_candidates_scores_one(self, paper_graph):
        result = crashsim(
            paper_graph,
            0,
            candidates=[0, 1],
            params=CrashSimParams(n_r_override=10),
            seed=0,
        )
        assert result.score(0) == 1.0

    def test_duplicate_candidates_deduped(self, paper_graph):
        result = crashsim(
            paper_graph,
            0,
            candidates=[3, 3, 5],
            params=CrashSimParams(n_r_override=10),
            seed=0,
        )
        assert result.candidates.tolist() == [3, 5]

    def test_empty_candidates(self, paper_graph):
        result = crashsim(
            paper_graph,
            0,
            candidates=[],
            params=CrashSimParams(n_r_override=10),
            seed=0,
        )
        assert result.candidates.size == 0
        assert result.scores.size == 0

    def test_dangling_candidate_scores_zero(self, dangling_graph):
        # Node 0 has no in-neighbours: its walk cannot move, estimator 0.
        result = crashsim(
            dangling_graph,
            1,
            candidates=[0],
            params=CrashSimParams(n_r_override=10),
            seed=0,
        )
        assert result.score(0) == 0.0

    def test_out_of_range_candidate_rejected(self, paper_graph):
        with pytest.raises(ParameterError):
            crashsim(paper_graph, 0, candidates=[99])


class TestDeterminism:
    def test_same_seed_same_result(self, small_random_graph):
        params = CrashSimParams(n_r_override=100)
        a = crashsim(small_random_graph, 1, params=params, seed=42)
        b = crashsim(small_random_graph, 1, params=params, seed=42)
        assert np.array_equal(a.scores, b.scores)

    def test_different_seeds_differ(self, small_random_graph):
        params = CrashSimParams(n_r_override=100)
        a = crashsim(small_random_graph, 1, params=params, seed=1)
        b = crashsim(small_random_graph, 1, params=params, seed=2)
        assert not np.array_equal(a.scores, b.scores)


class TestTreeReuse:
    def test_precomputed_tree_accepted(self, paper_graph):
        params = CrashSimParams(n_r_override=50)
        tree = revreach_levels(paper_graph, 0, params.l_max, params.c)
        result = crashsim(paper_graph, 0, params=params, tree=tree, seed=1)
        assert result.tree is tree

    def test_mismatched_tree_rejected(self, paper_graph):
        params = CrashSimParams(n_r_override=50)
        wrong_source = revreach_levels(paper_graph, 1, params.l_max, params.c)
        with pytest.raises(ParameterError):
            crashsim(paper_graph, 0, params=params, tree=wrong_source)
        wrong_depth = revreach_levels(paper_graph, 0, 3, params.c)
        with pytest.raises(ParameterError):
            crashsim(paper_graph, 0, params=params, tree=wrong_depth)
        wrong_variant = revreach_levels(
            paper_graph, 0, params.l_max, params.c, variant="paper"
        )
        with pytest.raises(ParameterError):
            crashsim(paper_graph, 0, params=params, tree=wrong_variant)


class TestResultInterface:
    def test_as_dict(self, paper_graph):
        result = crashsim(
            paper_graph, 0, params=CrashSimParams(n_r_override=10), seed=0
        )
        mapping = result.as_dict()
        assert set(mapping) == set(range(1, 8))

    def test_top_k_ordering(self, medium_random_graph):
        result = crashsim(
            medium_random_graph,
            0,
            params=CrashSimParams(n_r_override=300),
            seed=0,
        )
        top = result.top_k(5)
        assert len(top) == 5
        scores = [score for _, score in top]
        assert scores == sorted(scores, reverse=True)

    def test_top_k_bounds(self, paper_graph):
        result = crashsim(
            paper_graph, 0, params=CrashSimParams(n_r_override=10), seed=0
        )
        assert result.top_k(0) == []
        assert len(result.top_k(100)) == 7
        with pytest.raises(ParameterError):
            result.top_k(-1)

    def test_score_unknown_node_rejected(self, paper_graph):
        result = crashsim(
            paper_graph, 0, candidates=[2], params=CrashSimParams(n_r_override=10)
        )
        with pytest.raises(ParameterError):
            result.score(5)


def synthetic_result(candidates, scores):
    """Hand-built result for exercising the ranking logic in isolation."""
    return CrashSimResult(
        source=0,
        candidates=np.asarray(candidates, dtype=np.int64),
        scores=np.asarray(scores, dtype=np.float64),
        n_r=10,
        params=CrashSimParams(n_r_override=10),
        tree=None,
    )


class TestTopKTieBreaking:
    def test_ties_break_by_ascending_id(self):
        result = synthetic_result([3, 7, 12, 20], [0.5, 0.9, 0.5, 0.5])
        assert result.top_k(4) == [(7, 0.9), (3, 0.5), (12, 0.5), (20, 0.5)]

    def test_tie_at_the_cut(self):
        # Two candidates tie for the last slot; the smaller id wins it.
        result = synthetic_result([4, 9, 15], [0.8, 0.3, 0.3])
        assert result.top_k(2) == [(4, 0.8), (9, 0.3)]

    def test_all_scores_equal_yields_id_order(self):
        result = synthetic_result([30, 2, 11], [0.25, 0.25, 0.25])
        # candidates arrive sorted from crashsim; keep the fixture honest.
        result.candidates.sort()
        assert [node for node, _ in result.top_k(3)] == [2, 11, 30]

    def test_k_larger_than_candidate_set_returns_all(self):
        result = synthetic_result([1, 2], [0.1, 0.2])
        assert result.top_k(50) == [(2, 0.2), (1, 0.1)]


class TestEmptyCandidateSet:
    def test_top_k_on_empty_result(self, paper_graph):
        result = crashsim(
            paper_graph,
            0,
            candidates=[],
            params=CrashSimParams(n_r_override=10),
            seed=0,
        )
        assert result.top_k(0) == []
        assert result.top_k(5) == []
        with pytest.raises(ParameterError):
            result.top_k(-1)

    def test_score_on_empty_result(self, paper_graph):
        result = crashsim(
            paper_graph,
            0,
            candidates=[],
            params=CrashSimParams(n_r_override=10),
            seed=0,
        )
        assert result.as_dict() == {}
        with pytest.raises(ParameterError):
            result.score(0)


class TestValidation:
    def test_bad_source(self, paper_graph):
        with pytest.raises(ParameterError):
            crashsim(paper_graph, 99)

    def test_bad_first_meeting(self, paper_graph):
        with pytest.raises(ParameterError):
            crashsim(
                paper_graph,
                0,
                params=CrashSimParams(n_r_override=5),
                first_meeting="approximate",
            )
