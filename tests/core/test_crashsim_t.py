"""End-to-end tests for CrashSim-T (Algorithm 3)."""

import numpy as np
import pytest

from repro.baselines.power_method import power_method_all_pairs
from repro.core.crashsim_t import crashsim_t
from repro.core.params import CrashSimParams
from repro.core.queries import ThresholdQuery, TrendQuery
from repro.datasets.example_graph import node_id
from repro.errors import ParameterError, QueryError
from repro.graph.generators import evolve_snapshots, preferential_attachment
from repro.graph.temporal import TemporalGraphBuilder

PARAMS = CrashSimParams(c=0.6, epsilon=0.1, n_r_override=600)


def exact_threshold_survivors(temporal, source, theta, c=0.6):
    """Brute-force oracle: Power Method per snapshot + predicate filter."""
    survivors = None
    for graph in temporal.snapshots():
        scores = power_method_all_pairs(graph, c)[source]
        passing = {
            node
            for node in range(temporal.num_nodes)
            if node != source and scores[node] > theta
        }
        survivors = passing if survivors is None else survivors & passing
    return survivors


class TestThresholdQueries:
    def test_matches_exact_oracle_on_small_temporal(self):
        base = preferential_attachment(40, 2, directed=True, seed=3)
        temporal = evolve_snapshots(base, 4, churn_rate=0.02, seed=4)
        source = 5
        theta = 0.08
        truth = exact_threshold_survivors(temporal, source, theta)
        result = crashsim_t(
            temporal, source, ThresholdQuery(theta=theta), params=PARAMS, seed=9
        )
        got = set(result.survivors)
        # Monte-Carlo boundaries wobble: demand strong overlap, not equality.
        union = truth | got
        if union:
            overlap = len(truth & got) / len(union)
            assert overlap >= 0.6, (truth, got)
        else:
            assert got == truth

    def test_identical_snapshots_reduce_to_static_filter(self):
        builder = TemporalGraphBuilder(3, directed=True)
        edges = [(2, 0), (2, 1)]
        for _ in range(4):
            builder.push_snapshot(edges)
        temporal = builder.build()
        # sim(0, 1) = 0.6 exactly; threshold 0.3 keeps node 1 only.
        result = crashsim_t(
            temporal, 0, ThresholdQuery(theta=0.3), params=PARAMS, seed=2
        )
        assert result.survivors == (1,)

    def test_impossible_threshold_empties_omega(self, paper_temporal):
        result = crashsim_t(
            paper_temporal, 0, ThresholdQuery(theta=0.99), params=PARAMS, seed=1
        )
        assert result.survivors == ()
        # Early exit: snapshot 1 and 2 never evaluated once Ω is empty.
        assert result.stats.snapshots_processed == 1


class TestTrendQueries:
    def test_growing_similarity_detected(self):
        # Node 1 is rewired from its own in-neighbour to sharing the
        # source's: sim(0, 1) jumps from 0 to c.
        builder = TemporalGraphBuilder(5, directed=True)
        builder.push_snapshot([(2, 0), (3, 1)])
        builder.push_snapshot([(2, 0), (2, 1)])
        temporal = builder.build()
        result = crashsim_t(
            temporal,
            0,
            TrendQuery(direction="increasing", tolerance=0.02),
            params=PARAMS,
            seed=3,
        )
        assert 1 in result.survivors

    def test_decreasing_trend(self):
        # The reverse rewiring: sim(0, 1) drops from c to 0, so node 1
        # passes a decreasing trend and fails an increasing one.
        builder = TemporalGraphBuilder(5, directed=True)
        builder.push_snapshot([(2, 0), (2, 1)])
        builder.push_snapshot([(2, 0), (3, 1)])
        temporal = builder.build()
        decreasing = crashsim_t(
            temporal,
            0,
            TrendQuery(direction="decreasing", tolerance=0.02),
            params=PARAMS,
            seed=3,
        )
        assert 1 in decreasing.survivors
        increasing = crashsim_t(
            temporal,
            0,
            TrendQuery(direction="increasing", tolerance=0.02),
            params=PARAMS,
            seed=3,
        )
        assert 1 not in increasing.survivors


class TestPruningBehaviour:
    def test_identical_snapshot_carries_everything(self):
        builder = TemporalGraphBuilder(6, directed=True)
        # sim(0, 1) = c/2 · (1 + sim(2, 3)) > 0 keeps node 1 in Ω.
        base = [(2, 0), (2, 1), (3, 1), (4, 3)]
        builder.push_snapshot(base)
        builder.push_snapshot(base)
        temporal = builder.build()
        result = crashsim_t(
            temporal,
            0,
            ThresholdQuery(theta=0.0),
            params=PARAMS,
            seed=5,
        )
        stats = result.stats
        assert stats.source_tree_stable >= 1
        assert stats.delta_pruning_applied >= 1
        # Snapshot 2's candidates were all carried, none recomputed.
        assert stats.candidates_carried >= 1
        # Carried scores equal the previous snapshot's scores exactly.
        assert result.history[1] == {
            node: score
            for node, score in result.history[0].items()
            if node in result.history[1]
        }

    def test_remote_change_prunes_unaffected_candidates(self):
        builder = TemporalGraphBuilder(8, directed=True)
        # Source 0 has positive similarity to node 1; the change (7, 6)
        # lands in a disconnected component, far from Ω's reverse balls.
        base = [(2, 0), (2, 1), (3, 1), (4, 3), (5, 6)]
        builder.push_snapshot(base)
        builder.push_snapshot(base + [(7, 6)])
        temporal = builder.build()
        result = crashsim_t(
            temporal,
            0,
            ThresholdQuery(theta=0.0),
            params=PARAMS,
            seed=5,
        )
        stats = result.stats
        assert stats.source_tree_stable == 1
        assert stats.candidates_carried > 0

    def test_pruned_and_unpruned_agree_on_identical_snapshots(self):
        builder = TemporalGraphBuilder(6, directed=True)
        base = [(2, 0), (2, 1), (3, 1), (4, 3)]
        for _ in range(3):
            builder.push_snapshot(base)
        temporal = builder.build()
        kwargs = dict(params=PARAMS, seed=11)
        pruned = crashsim_t(
            temporal, 0, ThresholdQuery(theta=0.2), **kwargs
        )
        unpruned = crashsim_t(
            temporal,
            0,
            ThresholdQuery(theta=0.2),
            use_delta_pruning=False,
            use_difference_pruning=False,
            **kwargs,
        )
        # With static snapshots the threshold verdicts must coincide (the
        # estimator is well away from the boundary for this graph).
        assert pruned.survivors == unpruned.survivors


class TestInterface:
    def test_interval_subset(self, paper_temporal):
        result = crashsim_t(
            paper_temporal,
            0,
            ThresholdQuery(theta=0.0),
            interval=(1, 3),
            params=PARAMS,
            seed=1,
        )
        assert result.interval == (1, 3)
        assert len(result.history) <= 2

    def test_invalid_interval(self, paper_temporal):
        with pytest.raises(QueryError):
            crashsim_t(
                paper_temporal,
                0,
                ThresholdQuery(theta=0.1),
                interval=(2, 2),
                params=PARAMS,
            )
        with pytest.raises(QueryError):
            crashsim_t(
                paper_temporal,
                0,
                ThresholdQuery(theta=0.1),
                interval=(0, 99),
                params=PARAMS,
            )

    def test_invalid_source(self, paper_temporal):
        with pytest.raises(ParameterError):
            crashsim_t(paper_temporal, 99, ThresholdQuery(theta=0.1), params=PARAMS)

    def test_history_covers_processed_snapshots(self, paper_temporal):
        result = crashsim_t(
            paper_temporal, 0, ThresholdQuery(theta=0.0), params=PARAMS, seed=4
        )
        assert len(result.history) == result.stats.snapshots_processed

    def test_survivor_set_property(self, paper_temporal):
        result = crashsim_t(
            paper_temporal, 0, ThresholdQuery(theta=0.0), params=PARAMS, seed=4
        )
        assert result.survivor_set == set(result.survivors)
