"""Tests for revReach, including the paper's worked Example 2."""

import numpy as np
import pytest

from repro.core.revreach import revreach_levels, revreach_queue
from repro.datasets.example_graph import node_id
from repro.errors import ParameterError
from repro.graph.digraph import DiGraph

# (step, node, probability) exactly as Example 2 states them (c = 0.25).
EXAMPLE2_ENTRIES = [
    (1, "B", 0.25),
    (1, "C", 1 / 6),
    (2, "E", 0.0625),
    (2, "B", 1 / 24),
    (2, "D", 1 / 24),
    (3, "H", 0.015625),
    (3, "A", 1 / 96),
    (3, "E", 1 / 96),
    (3, "B", 1 / 96),
]


class TestPaperExample:
    def test_queue_paper_variant_reproduces_example2(self, paper_graph):
        tree = revreach_queue(paper_graph, node_id("A"), 3, 0.25, variant="paper")
        for step, label, expected in EXAMPLE2_ENTRIES:
            assert tree.probability(step, node_id(label)) == pytest.approx(
                expected, abs=1e-9
            ), (step, label)

    def test_example2_crash_probability(self, paper_graph):
        # W(C) = (C, D, B, A): s_k(A,C) = U(2,B) + U(3,A) = 0.0521.
        tree = revreach_queue(paper_graph, node_id("A"), 3, 0.25, variant="paper")
        crash = tree.probability(2, node_id("B")) + tree.probability(3, node_id("A"))
        assert crash == pytest.approx(0.0521, abs=5e-4)

    def test_root_level(self, paper_graph):
        tree = revreach_levels(paper_graph, node_id("A"), 3, 0.25)
        assert tree.probability(0, node_id("A")) == 1.0
        assert tree.total_mass(0) == 1.0


class TestCorrectedVariant:
    def test_level_mass_decays_by_sqrt_c(self, paper_graph):
        # The example graph has no dangling nodes, so the occupancy mass at
        # step k is exactly (√c)^k.
        tree = revreach_levels(paper_graph, node_id("A"), 6, 0.25, variant="corrected")
        for step in range(7):
            assert tree.total_mass(step) == pytest.approx(0.5**step)

    def test_matches_transition_matrix_power(self, small_random_graph):
        graph = small_random_graph
        c = 0.6
        tree = revreach_levels(graph, 4, 5, c, variant="corrected")
        operator = np.sqrt(c) * graph.reverse_transition_matrix().toarray()
        vector = np.zeros(graph.num_nodes)
        vector[4] = 1.0
        for step in range(1, 6):
            vector = vector @ operator
            assert np.allclose(tree.matrix[step], vector, atol=1e-12)

    def test_mass_lost_at_dangling_nodes(self, dangling_graph):
        tree = revreach_levels(dangling_graph, 1, 3, 0.25, variant="corrected")
        # I(1) = {0, 2}; both 0 and 2 are dangling, so level 2 is empty.
        assert tree.total_mass(1) == pytest.approx(0.5)
        assert tree.total_mass(2) == 0.0


class TestVariantAgreement:
    def test_queue_and_levels_agree_on_dags(self, chain_graph):
        # Without 2-cycles the parent-exclusion rule never fires, so the
        # literal queue algorithm equals the level propagation per variant.
        for variant in ("corrected", "paper"):
            by_queue = revreach_queue(chain_graph, 0, 3, 0.36, variant=variant)
            by_levels = revreach_levels(chain_graph, 0, 3, 0.36, variant=variant)
            assert np.allclose(by_queue.matrix, by_levels.matrix)

    def test_queue_undercounts_on_two_cycles(self):
        # 0 <-> 1: the queue's parent exclusion drops the bounce-back path,
        # so its level-2 mass at the source is below the exact propagation.
        graph = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        exact = revreach_levels(graph, 0, 2, 0.25, variant="corrected")
        literal = revreach_queue(graph, 0, 2, 0.25, variant="corrected")
        assert exact.probability(2, 0) > 0.0
        assert literal.probability(2, 0) == 0.0


class TestTreeInterface:
    def test_level_sparse_view(self, paper_graph):
        tree = revreach_levels(paper_graph, node_id("A"), 2, 0.25)
        level1 = tree.level(1)
        assert set(level1) == {node_id("B"), node_id("C")}

    def test_support(self, chain_graph):
        tree = revreach_levels(chain_graph, 0, 2, 0.25)
        assert tree.support().tolist() == [0, 1, 2]

    def test_same_as(self, paper_graph):
        a = revreach_levels(paper_graph, 0, 3, 0.25)
        b = revreach_levels(paper_graph, 0, 3, 0.25)
        assert a.same_as(b)
        c = revreach_levels(paper_graph, 1, 3, 0.25)
        assert not a.same_as(c)
        shorter = revreach_levels(paper_graph, 0, 2, 0.25)
        assert not a.same_as(shorter)

    def test_same_as_with_tolerance(self, paper_graph):
        a = revreach_levels(paper_graph, 0, 3, 0.25)
        perturbed = a.matrix.copy()
        perturbed[1, 1] += 1e-12
        from repro.core.revreach import ReverseReachableTree

        b = ReverseReachableTree(
            source=a.source, c=a.c, l_max=a.l_max, variant=a.variant,
            matrix=perturbed,
        )
        assert not a.same_as(b)
        assert a.same_as(b, tol=1e-9)

    def test_matrix_is_read_only(self, paper_graph):
        tree = revreach_levels(paper_graph, 0, 2, 0.25)
        with pytest.raises(ValueError):
            tree.matrix[0, 0] = 5.0

    def test_probability_bounds_checked(self, paper_graph):
        tree = revreach_levels(paper_graph, 0, 2, 0.25)
        with pytest.raises(ParameterError):
            tree.probability(3, 0)


class TestPruneBelow:
    def test_prune_below_drops_small_entries(self, medium_random_graph):
        exact = revreach_levels(medium_random_graph, 0, 6, 0.6)
        pruned = revreach_levels(medium_random_graph, 0, 6, 0.6, prune_below=0.01)
        assert pruned.matrix.sum() <= exact.matrix.sum()
        # Every surviving entry (the root's 1.0 included) clears the floor.
        nonzero = pruned.matrix[pruned.matrix > 0]
        if nonzero.size:
            assert nonzero.min() >= 0.01


class TestValidation:
    def test_bad_source(self, paper_graph):
        with pytest.raises(ParameterError):
            revreach_levels(paper_graph, 99, 3, 0.25)

    def test_bad_c(self, paper_graph):
        with pytest.raises(ParameterError):
            revreach_levels(paper_graph, 0, 3, 0.0)

    def test_bad_l_max(self, paper_graph):
        with pytest.raises(ParameterError):
            revreach_levels(paper_graph, 0, -1, 0.25)

    def test_bad_variant(self, paper_graph):
        with pytest.raises(ParameterError):
            revreach_levels(paper_graph, 0, 3, 0.25, variant="mystery")
        with pytest.raises(ParameterError):
            revreach_queue(paper_graph, 0, 3, 0.25, variant="mystery")

    def test_l_max_zero_gives_root_only(self, paper_graph):
        tree = revreach_levels(paper_graph, 0, 0, 0.25)
        assert tree.matrix.shape == (1, paper_graph.num_nodes)
        assert tree.total_mass(0) == 1.0
