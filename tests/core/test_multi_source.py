"""Tests for multi-source CrashSim with shared candidate walks."""

import time

import numpy as np
import pytest

from repro.baselines.power_method import power_method_all_pairs
from repro.core.multi_source import crashsim_multi_source
from repro.core.params import CrashSimParams
from repro.errors import ParameterError

PARAMS = CrashSimParams(c=0.6, epsilon=0.05, n_r_override=800)


class TestCorrectness:
    def test_each_source_matches_ground_truth(self, medium_random_graph):
        graph = medium_random_graph
        truth = power_method_all_pairs(graph, 0.6)
        sources = [0, 17, 123]
        results = crashsim_multi_source(graph, sources, params=PARAMS, seed=1)
        assert [r.source for r in results] == sources
        for result in results:
            estimate = np.zeros(graph.num_nodes)
            estimate[result.candidates] = result.scores
            estimate[result.source] = 1.0
            assert np.abs(truth[result.source] - estimate).max() < 0.06

    def test_candidate_subset(self, paper_graph):
        results = crashsim_multi_source(
            paper_graph, [0, 1], candidates=[2, 3], params=PARAMS, seed=2
        )
        for result in results:
            assert result.candidates.tolist() == [2, 3]

    def test_source_excluded_from_own_candidates(self, paper_graph):
        results = crashsim_multi_source(paper_graph, [0, 3], params=PARAMS, seed=3)
        assert 0 not in results[0].candidates
        assert 3 in results[0].candidates
        assert 3 not in results[1].candidates

    def test_single_source_degenerates_cleanly(self, paper_graph):
        (result,) = crashsim_multi_source(paper_graph, [2], params=PARAMS, seed=4)
        assert result.source == 2
        assert result.scores.max() <= 1.0

    def test_empty_sources(self, paper_graph):
        assert crashsim_multi_source(paper_graph, [], params=PARAMS) == []

    def test_deterministic(self, small_random_graph):
        a = crashsim_multi_source(small_random_graph, [1, 5], params=PARAMS, seed=7)
        b = crashsim_multi_source(small_random_graph, [1, 5], params=PARAMS, seed=7)
        for left, right in zip(a, b):
            assert np.array_equal(left.scores, right.scores)


class TestAmortisation:
    def test_faster_than_independent_runs(self, medium_random_graph):
        """Walking once for 6 sources must beat 6 independent runs (the
        whole point); generous 1.2x margin to stay timing-robust."""
        from repro.core.crashsim import crashsim

        graph = medium_random_graph
        sources = list(range(6))
        params = CrashSimParams(c=0.6, epsilon=0.05, n_r_override=400)

        start = time.perf_counter()
        crashsim_multi_source(graph, sources, params=params, seed=8)
        shared = time.perf_counter() - start

        start = time.perf_counter()
        for source in sources:
            crashsim(graph, source, params=params, seed=8)
        independent = time.perf_counter() - start

        assert shared < independent / 1.2, (shared, independent)


class TestValidation:
    def test_bad_source(self, paper_graph):
        with pytest.raises(ParameterError):
            crashsim_multi_source(paper_graph, [0, 99], params=PARAMS)

    def test_bad_candidate(self, paper_graph):
        with pytest.raises(ParameterError):
            crashsim_multi_source(
                paper_graph, [0], candidates=[99], params=PARAMS
            )
