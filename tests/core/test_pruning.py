"""Tests for the pruning primitives (Theorem 2, Properties 1-2)."""

import numpy as np
import pytest

from repro.core.pruning import (
    affected_area,
    count_candidate_edges,
    edge_subgraph,
    tree_unchanged,
)
from repro.core.revreach import revreach_levels
from repro.datasets.example_graph import node_id
from repro.errors import ParameterError
from repro.graph.digraph import DiGraph


class TestAffectedArea:
    def test_paper_example3(self, paper_temporal):
        """Example 3: deleting H -> F with l_max = 2 affects only F (and,
        conservatively, the tail H)."""
        snapshot = paper_temporal.snapshot(1)
        h, f = node_id("H"), node_id("F")
        area = affected_area(snapshot, [(h, f)], 2, include_tails=False)
        # F has no out-neighbours, so the affected area is F alone.
        assert area == {f}

    def test_forward_reach_depth(self):
        # Chain 0 -> 1 -> 2 -> 3 -> 4; change lands on edge (0, 1).
        graph = DiGraph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert affected_area(graph, [(0, 1)], 1, include_tails=False) == {1}
        assert affected_area(graph, [(0, 1)], 2, include_tails=False) == {1, 2}
        assert affected_area(graph, [(0, 1)], 4, include_tails=False) == {1, 2, 3, 4}

    def test_tails_included_by_default(self):
        graph = DiGraph.from_edges(3, [(0, 1)])
        assert 0 in affected_area(graph, [(0, 1)], 2)

    def test_multiple_changes_union(self):
        graph = DiGraph.from_edges(6, [(0, 1), (2, 3), (3, 4)])
        area = affected_area(graph, [(0, 1), (2, 3)], 2, include_tails=False)
        assert area == {1, 3, 4}

    def test_invalid_l_max(self, paper_graph):
        with pytest.raises(ParameterError):
            affected_area(paper_graph, [(0, 1)], 0)

    def test_soundness_against_ground_truth(self, small_random_graph):
        """Any node whose single-source SimRank changes after an edge flip
        must lie inside the (tails-included) affected area."""
        from repro.baselines.power_method import power_method_all_pairs
        from repro.graph.builder import GraphBuilder

        graph = small_random_graph
        c = 0.6
        l_max = 35
        edge = next(iter(graph.edges()))
        builder = GraphBuilder.from_graph(graph)
        builder.remove_edge(edge[0], edge[1])
        changed = builder.build()
        area = affected_area(graph, [edge], l_max) | affected_area(
            changed, [edge], l_max
        )
        before = power_method_all_pairs(graph, c)
        after = power_method_all_pairs(changed, c)
        for source in range(graph.num_nodes):
            moved = np.nonzero(
                np.abs(before[source] - after[source]) > 1e-9
            )[0]
            # The source's own tree changing is handled by Algorithm 3's
            # line-7 gate; the per-candidate claim is what we check here.
            if source in area:
                continue
            assert set(moved.tolist()) <= area, (source, moved)


class TestEdgeSubgraph:
    def test_restricts_edges(self, paper_graph):
        omega = [node_id(x) for x in ("A", "B", "C")]
        sub = edge_subgraph(paper_graph, omega)
        assert sub.num_nodes == paper_graph.num_nodes
        for source, target in sub.edges():
            assert source in omega and target in omega
        # A <-> B edges survive; E -> B does not.
        assert sub.has_edge(node_id("B"), node_id("A"))
        assert not sub.has_edge(node_id("E"), node_id("B"))

    def test_empty_omega(self, paper_graph):
        sub = edge_subgraph(paper_graph, [])
        assert sub.num_arcs == 0

    def test_out_of_range_rejected(self, paper_graph):
        with pytest.raises(ParameterError):
            edge_subgraph(paper_graph, [99])


class TestCountCandidateEdges:
    def test_counts_internal_arcs(self, paper_graph):
        omega = [node_id(x) for x in ("A", "B", "C")]
        count = count_candidate_edges(paper_graph, omega)
        # Arcs among {A,B,C}: A->B, A->C, B->A, B->C, C->A.
        assert count == 5

    def test_empty(self, paper_graph):
        assert count_candidate_edges(paper_graph, []) == 0

    def test_full_set_counts_all_arcs(self, paper_graph):
        assert (
            count_candidate_edges(paper_graph, list(paper_graph.nodes()))
            == paper_graph.num_arcs
        )


class TestTreeUnchanged:
    def test_paper_example4(self, paper_temporal):
        """Example 4: adding G -> F leaves the trees of A and E unchanged
        (with l_max = 2)."""
        prev = paper_temporal.snapshot(1)
        cur = paper_temporal.snapshot(2)
        assert tree_unchanged(prev, cur, node_id("A"), 2, 0.25)
        assert tree_unchanged(prev, cur, node_id("E"), 2, 0.25)
        # F's own tree gains the new in-edge.
        assert not tree_unchanged(prev, cur, node_id("F"), 2, 0.25)

    def test_detects_depth_sensitivity(self):
        # Chain 0 <- 1 <- 2 <- 3: the new edge 3 -> 2 sits at reverse
        # distance 3 from node 0, invisible to depth-2 trees.
        prev = DiGraph.from_edges(4, [(1, 0), (2, 1)])
        cur = DiGraph.from_edges(4, [(1, 0), (2, 1), (3, 2)])
        assert tree_unchanged(prev, cur, 0, 2, 0.25)
        assert not tree_unchanged(prev, cur, 0, 3, 0.25)
