"""Tests for the streaming temporal query session."""

import numpy as np
import pytest

from repro.core.crashsim_t import crashsim_t
from repro.core.params import CrashSimParams
from repro.core.queries import CompositeQuery, ThresholdQuery, TrendQuery
from repro.core.streaming import TemporalQuerySession
from repro.errors import ParameterError, TemporalError
from repro.graph.digraph import DiGraph
from repro.graph.generators import evolve_snapshots, preferential_attachment

PARAMS = CrashSimParams(c=0.6, epsilon=0.1, n_r_override=400)


def pair_snapshots():
    first = DiGraph.from_edges(4, [(2, 0), (2, 1)])
    second = DiGraph.from_edges(4, [(2, 0), (3, 1)])
    return first, second


class TestStreamingBasics:
    def test_matches_batch_driver(self):
        """Streaming the same snapshots must select the same survivors as
        the batch crashsim_t run with the same seed."""
        base = preferential_attachment(40, 2, directed=True, seed=1)
        temporal = evolve_snapshots(base, 4, churn_rate=0.02, seed=2)
        query = ThresholdQuery(theta=0.02)
        batch = crashsim_t(temporal, 3, query, params=PARAMS, seed=5)

        session = TemporalQuerySession(3, query, params=PARAMS, seed=5)
        for graph in temporal.snapshots():
            session.push_snapshot(graph)
        assert session.survivors == batch.survivors
        assert session.snapshots_seen == temporal.num_snapshots

    def test_threshold_drop_detected(self):
        first, second = pair_snapshots()
        session = TemporalQuerySession(
            0, ThresholdQuery(theta=0.3), params=PARAMS, seed=1
        )
        assert session.push_snapshot(first) == (1,)
        assert session.push_snapshot(second) == ()

    def test_push_delta_equivalent_to_full_snapshot(self):
        first, second = pair_snapshots()
        by_snapshot = TemporalQuerySession(
            0, ThresholdQuery(theta=0.3), params=PARAMS, seed=9
        )
        by_snapshot.push_snapshot(first)
        by_snapshot.push_snapshot(second)

        by_delta = TemporalQuerySession(
            0, ThresholdQuery(theta=0.3), params=PARAMS, seed=9
        )
        by_delta.push_snapshot(first)
        by_delta.push_delta(added=[(3, 1)], removed=[(2, 1)])
        assert by_delta.survivors == by_snapshot.survivors

    def test_scores_exposed(self):
        first, _ = pair_snapshots()
        session = TemporalQuerySession(
            0, ThresholdQuery(theta=0.3), params=PARAMS, seed=2
        )
        session.push_snapshot(first)
        scores = session.scores
        assert set(scores) == {1}
        assert scores[1] == pytest.approx(0.6, abs=0.08)

    def test_composite_query(self):
        first, second = pair_snapshots()
        query = CompositeQuery(
            (ThresholdQuery(theta=0.3), TrendQuery(tolerance=0.05)),
            mode="all",
        )
        session = TemporalQuerySession(0, query, params=PARAMS, seed=3)
        session.push_snapshot(first)
        assert 1 in session.survivors
        session.push_snapshot(second)  # similarity collapses to 0
        assert session.survivors == ()

    def test_constant_state_across_long_stream(self):
        base = preferential_attachment(30, 2, directed=True, seed=4)
        session = TemporalQuerySession(
            2, ThresholdQuery(theta=0.0), params=PARAMS, seed=4
        )
        for _ in range(12):
            session.push_snapshot(base)  # identical snapshots
        assert session.snapshots_seen == 12
        # Carried forward, never recomputed: scores are stable objects.
        assert len(session.scores) == len(session.survivors)


class TestStreamingValidation:
    def test_delta_before_start_rejected(self):
        session = TemporalQuerySession(0, ThresholdQuery(theta=0.1))
        with pytest.raises(TemporalError):
            session.push_delta(added=[(0, 1)])

    def test_node_count_change_rejected(self):
        first, _ = pair_snapshots()
        session = TemporalQuerySession(
            0, ThresholdQuery(theta=0.1), params=PARAMS
        )
        session.push_snapshot(first)
        with pytest.raises(TemporalError):
            session.push_snapshot(DiGraph.from_edges(9, [(0, 1)]))

    def test_bad_source(self):
        first, _ = pair_snapshots()
        session = TemporalQuerySession(
            99, ThresholdQuery(theta=0.1), params=PARAMS
        )
        with pytest.raises(ParameterError):
            session.push_snapshot(first)

    def test_survivors_empty_before_start(self):
        session = TemporalQuerySession(0, ThresholdQuery(theta=0.1))
        assert session.survivors == ()
        assert not session.started
