"""Tests for the shared concentration-bound helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import bernstein_radius, chernoff_trial_count
from repro.errors import ParameterError


class TestChernoffTrialCount:
    def test_formula(self):
        expected = math.ceil(3 * 0.6 / 0.025**2 * math.log(1000 / 0.01))
        assert chernoff_trial_count(1000, 0.6, 0.025, 0.01) == expected

    def test_monotonicity(self):
        base = chernoff_trial_count(1000, 0.6, 0.05, 0.01)
        assert chernoff_trial_count(1000, 0.6, 0.025, 0.01) > base
        assert chernoff_trial_count(10_000, 0.6, 0.05, 0.01) > base
        assert chernoff_trial_count(1000, 0.6, 0.05, 0.001) > base

    def test_validation(self):
        with pytest.raises(ParameterError):
            chernoff_trial_count(0, 0.6, 0.05, 0.01)
        with pytest.raises(ParameterError):
            chernoff_trial_count(10, 1.5, 0.05, 0.01)
        with pytest.raises(ParameterError):
            chernoff_trial_count(10, 0.6, 0.0, 0.01)


class TestBernsteinRadius:
    def test_scalar_and_array_agree(self):
        scalar = bernstein_radius(0.1, 0.6, 200)
        array = bernstein_radius(np.array([0.1, 0.1]), 0.6, 200)
        assert isinstance(scalar, float)
        assert np.allclose(array, scalar)

    def test_shrinks_with_trials(self):
        assert bernstein_radius(0.1, 0.6, 1000) < bernstein_radius(0.1, 0.6, 100)

    def test_grows_with_score(self):
        assert bernstein_radius(0.5, 0.6, 200) > bernstein_radius(0.01, 0.6, 200)

    def test_validation(self):
        with pytest.raises(ParameterError):
            bernstein_radius(0.1, 0.6, 0)
        with pytest.raises(ParameterError):
            bernstein_radius(0.1, 1.5, 100)
        with pytest.raises(ParameterError):
            bernstein_radius(0.1, 0.6, 100, z=0.0)

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=1, max_value=100_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_positive_and_finite(self, score, trials):
        radius = bernstein_radius(score, 0.6, trials)
        assert radius > 0.0
        assert math.isfinite(radius)

    def test_empirical_coverage(self):
        """The 4σ radius must cover the true mean for essentially every
        Monte-Carlo estimate of a Bernoulli-ish crash value."""
        rng = np.random.default_rng(0)
        c, true_mean, trials = 0.6, 0.05, 300
        misses = 0
        for _ in range(300):
            # Trial values in {0, c} with mean true_mean (variance c·s-ish).
            samples = c * (rng.random(trials) < true_mean / c)
            estimate = samples.mean()
            radius = bernstein_radius(estimate, c, trials)
            if abs(estimate - true_mean) > radius:
                misses += 1
        assert misses == 0
