"""Tests for the Theorem-1 parameter derivations."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import CrashSimParams
from repro.errors import ParameterError


class TestDerivations:
    def test_l_max_paper_values(self):
        # c = 0.25 -> √c = 0.5 -> (1.5)/(0.25) = 6 (Example 2's setting).
        assert CrashSimParams(c=0.25, epsilon=0.1).l_max == 6
        # c = 0.6 -> ≈ 34.94 -> 35 (the experiments' setting).
        assert CrashSimParams(c=0.6, epsilon=0.025).l_max == 35

    def test_p_is_geometric_cdf(self):
        params = CrashSimParams(c=0.6, epsilon=0.025)
        explicit = sum(
            params.sqrt_c ** (k - 1) * (1 - params.sqrt_c)
            for k in range(1, params.l_max + 1)
        )
        assert params.p == pytest.approx(explicit)

    def test_p_plus_epsilon_t_is_one(self):
        params = CrashSimParams(c=0.6, epsilon=0.025)
        assert params.p + params.epsilon_t == pytest.approx(1.0)

    def test_n_r_formula(self):
        params = CrashSimParams(c=0.6, epsilon=0.025, delta=0.01)
        margin = params.epsilon - params.p * params.epsilon_t
        expected = math.ceil(3 * 0.6 / margin**2 * math.log(1000 / 0.01))
        assert params.n_r_theoretical(1000) == expected

    def test_n_r_monotone_in_nodes(self):
        params = CrashSimParams()
        assert params.n_r_theoretical(10_000) > params.n_r_theoretical(100)

    def test_n_r_decreases_with_epsilon(self):
        loose = CrashSimParams(epsilon=0.1)
        tight = CrashSimParams(epsilon=0.0125)
        assert tight.n_r_theoretical(1000) > loose.n_r_theoretical(1000)

    @given(
        st.floats(min_value=0.1, max_value=0.9),
        st.floats(min_value=0.01, max_value=0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_derivations_in_valid_ranges(self, c, epsilon):
        try:
            params = CrashSimParams(c=c, epsilon=epsilon)
        except ParameterError:
            # Small c makes the truncation slack p·ε_t exceed tight ε; the
            # constructor must reject that combination, which is fine.
            import math

            l_max = math.ceil((1 + math.sqrt(c)) / (1 - math.sqrt(c)) ** 2)
            slack = (1 - math.sqrt(c) ** l_max) * math.sqrt(c) ** l_max
            assert epsilon <= slack
            return
        assert params.l_max >= 1
        # For large c, (√c)^l_max underflows to exactly 0.0 in float64, so
        # p may round to exactly 1.
        assert 0.0 < params.p <= 1.0
        assert 0.0 <= params.epsilon_t < 1.0
        assert params.truncation_slack < params.epsilon
        assert params.n_r_theoretical(100) >= 1


class TestOverrides:
    def test_override_wins(self):
        params = CrashSimParams(n_r_override=7, n_r_cap=3)
        assert params.n_r(10_000) == 7

    def test_cap_clamps(self):
        params = CrashSimParams(n_r_cap=50)
        assert params.n_r(10_000) == 50

    def test_cap_does_not_raise_small_theoretical(self):
        params = CrashSimParams(epsilon=0.5, n_r_cap=10**9)
        assert params.n_r(10) == params.n_r_theoretical(10)

    def test_with_epsilon_copies(self):
        base = CrashSimParams(c=0.7, epsilon=0.05, n_r_cap=99)
        derived = base.with_epsilon(0.1)
        assert derived.epsilon == 0.1
        assert derived.c == 0.7
        assert derived.n_r_cap == 99

    def test_describe_mentions_values(self):
        text = CrashSimParams().describe(100)
        assert "l_max=35" in text
        assert "c=0.6" in text


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"c": 0.0},
            {"c": 1.0},
            {"epsilon": 0.0},
            {"epsilon": 1.0},
            {"delta": 0.0},
            {"delta": 1.5},
            {"n_r_override": 0},
            {"n_r_cap": -1},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            CrashSimParams(**kwargs)

    def test_epsilon_below_truncation_slack_rejected(self):
        # c = 0.25 gives ε_t = 0.5^6 ≈ 0.0156; ε must exceed p·ε_t.
        with pytest.raises(ParameterError):
            CrashSimParams(c=0.25, epsilon=0.01)

    def test_n_r_requires_positive_nodes(self):
        with pytest.raises(ParameterError):
            CrashSimParams().n_r_theoretical(0)


class TestAchievedEpsilon:
    @pytest.mark.parametrize("trials", [0, -1, -100])
    def test_non_positive_trials_rejected(self, trials):
        with pytest.raises(ParameterError):
            CrashSimParams().achieved_epsilon(100, trials)

    def test_overshooting_trials_clamps_to_nominal(self):
        # More trials than Lemma 3 demands would invert to an ε tighter
        # than δ supports at the nominal confidence — report nominal ε.
        params = CrashSimParams(epsilon=0.1)
        theoretical = params.n_r_theoretical(100)
        assert params.achieved_epsilon(100, theoretical + 1) == params.epsilon
        assert params.achieved_epsilon(100, 10 * theoretical) == params.epsilon

    def test_exact_theoretical_count_reaches_nominal(self):
        params = CrashSimParams(epsilon=0.1)
        theoretical = params.n_r_theoretical(100)
        achieved = params.achieved_epsilon(100, theoretical)
        assert params.truncation_slack < achieved <= params.epsilon + 1e-9

    def test_partial_trials_widen_monotonically(self):
        params = CrashSimParams(epsilon=0.1)
        theoretical = params.n_r_theoretical(1000)
        counts = [1, theoretical // 10, theoretical // 2, theoretical]
        widths = [params.achieved_epsilon(1000, t) for t in counts]
        assert widths == sorted(widths, reverse=True)
        assert widths[0] == 1.0  # one trial: clamped at SimRank's range
