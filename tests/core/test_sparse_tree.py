"""Sparse reverse-reachable trees: bit-for-bit agreement with dense,
incremental updates, fingerprints, gather, and the dense-row fallback.

The contract under test (ISSUE 3): the sparse representation is a pure
re-encoding — every probability, every propagated level, and every score
computed through it is the *same float* the dense path produces.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.crashsim import crashsim
from repro.core.params import CrashSimParams
from repro.core.revreach import (
    DENSITY_THRESHOLD,
    ReverseReachableTree,
    SparseReverseTree,
    revreach_levels,
    revreach_update,
)
from repro.errors import ParameterError
from repro.graph.digraph import DiGraph
from repro.graph.generators import preferential_attachment

settings.register_profile("sparse_tree", max_examples=30, deadline=None)
settings.load_profile("sparse_tree")


@st.composite
def random_graph(draw, weighted=False):
    num_nodes = draw(st.integers(min_value=2, max_value=14))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_nodes - 1), st.integers(0, num_nodes - 1)
            ),
            min_size=1,
            max_size=50,
        )
    )
    edges = sorted({(s, t) for s, t in pairs if s != t}) or [(0, 1)]
    weights = None
    if weighted:
        weights = draw(
            st.lists(
                st.floats(min_value=1e-6, max_value=1e6),
                min_size=len(edges),
                max_size=len(edges),
            )
        )
    graph = DiGraph.from_edges(num_nodes, edges, weights=weights)
    source = draw(st.integers(0, num_nodes - 1))
    l_max = draw(st.integers(0, 7))
    c = draw(st.sampled_from([0.25, 0.6, 0.8]))
    return graph, source, l_max, c


class TestBitForBitAgreement:
    @given(random_graph())
    def test_sparse_equals_dense_corrected(self, case):
        graph, source, l_max, c = case
        sparse = revreach_levels(graph, source, l_max, c, variant="corrected")
        dense = revreach_levels(
            graph, source, l_max, c, variant="corrected", dense=True
        )
        assert isinstance(sparse, SparseReverseTree)
        assert isinstance(dense, ReverseReachableTree)
        assert np.array_equal(sparse.matrix, dense.matrix)

    @given(random_graph())
    def test_sparse_equals_dense_paper(self, case):
        graph, source, l_max, c = case
        sparse = revreach_levels(graph, source, l_max, c, variant="paper")
        dense = revreach_levels(graph, source, l_max, c, variant="paper", dense=True)
        assert np.array_equal(sparse.matrix, dense.matrix)

    @given(random_graph(weighted=True))
    def test_sparse_equals_dense_weighted(self, case):
        graph, source, l_max, c = case
        sparse = revreach_levels(graph, source, l_max, c)
        dense = revreach_levels(graph, source, l_max, c, dense=True)
        assert np.array_equal(sparse.matrix, dense.matrix)

    @given(random_graph())
    def test_round_trip_conversions(self, case):
        graph, source, l_max, c = case
        sparse = revreach_levels(graph, source, l_max, c)
        assert sparse.to_dense().to_sparse().same_as(sparse)
        assert sparse.same_as(sparse.to_dense())
        assert sparse.to_dense().same_as(sparse)

    @given(random_graph())
    def test_gather_matches_dense_fancy_index(self, case):
        graph, source, l_max, c = case
        sparse = revreach_levels(graph, source, l_max, c)
        rng = np.random.default_rng(0)
        positions = rng.integers(0, graph.num_nodes, size=37)
        for step in range(l_max + 1):
            expected = sparse.matrix[step, positions]
            assert np.array_equal(sparse.gather(step, positions), expected)


class TestIncrementalUpdate:
    @given(random_graph(), st.integers(0, 2**31 - 1))
    def test_update_matches_fresh_build(self, case, delta_seed):
        graph, source, l_max, c = case
        tree = revreach_levels(graph, source, l_max, c)
        rng = np.random.default_rng(delta_seed)
        edges = set(map(tuple, graph.edges()))
        removed = set()
        if edges and rng.random() < 0.7:
            removed = {sorted(edges)[int(rng.integers(len(edges)))]}
        added = set()
        for _ in range(int(rng.integers(0, 3))):
            s, t = rng.integers(0, graph.num_nodes, size=2)
            if s != t and (int(s), int(t)) not in edges:
                added.add((int(s), int(t)))
        added -= removed
        new_edges = sorted((edges - removed) | added)
        if not new_edges:
            return
        new_graph = DiGraph.from_edges(graph.num_nodes, new_edges)
        updated = revreach_update(tree, new_graph, added, removed)
        rebuilt = revreach_levels(new_graph, source, l_max, c)
        assert updated.same_as(rebuilt)
        assert np.array_equal(updated.matrix, rebuilt.matrix)

    def test_untouched_delta_returns_same_object(self):
        graph = DiGraph.from_edges(5, [(1, 0), (2, 1), (3, 2), (4, 3)])
        tree = revreach_levels(graph, 0, 2, 0.6)  # occupancy: {0}, {1}, {2}
        # Heads 3 and 4 carry no mass below l_max, so the tree is reused.
        assert revreach_update(tree, graph, [(0, 4)], []) is tree
        assert revreach_update(tree, graph, [], []) is tree

    def test_update_rejects_paper_variant(self):
        graph = DiGraph.from_edges(3, [(1, 0), (2, 1)])
        tree = revreach_levels(graph, 0, 2, 0.6, variant="paper")
        with pytest.raises(ParameterError):
            revreach_update(tree, graph, [(0, 2)], [])


class TestFingerprintsAndSameAs:
    def test_fingerprints_stable_and_discriminating(self):
        graph = preferential_attachment(40, 2, directed=True, seed=3)
        a = revreach_levels(graph, 0, 4, 0.6)
        b = revreach_levels(graph, 0, 4, 0.6)
        assert a.fingerprints() == b.fingerprints()
        other = revreach_levels(graph, 1, 4, 0.6)
        assert a.fingerprints() != other.fingerprints()
        assert a.same_as(b)
        assert not a.same_as(other)

    def test_same_as_metadata_mismatches(self):
        graph = preferential_attachment(30, 2, directed=True, seed=4)
        a = revreach_levels(graph, 0, 4, 0.6)
        assert not a.same_as(revreach_levels(graph, 0, 3, 0.6))
        assert not a.same_as(revreach_levels(graph, 0, 4, 0.6, variant="paper"))

    def test_same_as_with_tolerance_cross_representation(self):
        graph = preferential_attachment(30, 2, directed=True, seed=4)
        a = revreach_levels(graph, 0, 3, 0.6)
        perturbed = np.array(a.matrix)
        nodes, _ = a.level_arrays(1)
        perturbed[1, nodes[0]] += 1e-13
        b = ReverseReachableTree(
            source=a.source, c=a.c, l_max=a.l_max, variant=a.variant,
            matrix=perturbed,
        )
        assert not a.same_as(b)
        assert a.same_as(b, tol=1e-9)


class TestDenseRowFallback:
    def test_dense_rows_materialised_past_threshold(self):
        # A star into node 0: level 1 occupies every other node, so its
        # support fraction ((n-1)/n) exceeds DENSITY_THRESHOLD and gather
        # must take (and cache) the dense-row path.
        n = 16
        graph = DiGraph.from_edges(n, [(i, 0) for i in range(1, n)])
        tree = revreach_levels(graph, 0, 1, 0.6)
        assert tree.level_size(1) == n - 1
        assert tree.level_size(1) >= DENSITY_THRESHOLD * n
        positions = np.arange(n, dtype=np.int64)
        first = tree.gather(1, positions)
        assert 1 in tree._dense_rows
        second = tree.gather(1, positions)
        assert np.array_equal(first, second)
        assert np.array_equal(first, tree.matrix[1, positions])


class TestTreeSurface:
    def test_levels_are_sorted_and_positive(self):
        graph = preferential_attachment(50, 3, directed=True, seed=8)
        tree = revreach_levels(graph, 0, 5, 0.6)
        for step in range(tree.l_max + 1):
            nodes, probs = tree.level_arrays(step)
            assert np.all(np.diff(nodes) > 0)
            assert np.all(probs > 0)

    def test_arrays_read_only(self):
        graph = preferential_attachment(20, 2, directed=True, seed=8)
        tree = revreach_levels(graph, 0, 3, 0.6)
        for array in (tree.level_indptr, tree.nodes, tree.probs):
            with pytest.raises(ValueError):
                array[0] = 1

    def test_first_level_containing(self):
        graph = DiGraph.from_edges(4, [(1, 0), (2, 1), (3, 2)])
        tree = revreach_levels(graph, 0, 3, 0.6)  # levels occupy 0,1,2,3
        assert tree.first_level_containing(np.array([1])) == 1
        assert tree.first_level_containing(np.array([5, 2])) == 2
        # limit excludes levels >= limit: node 3 only appears at level 3.
        assert tree.first_level_containing(np.array([3]), limit=3) is None
        assert tree.first_level_containing(np.array([], dtype=np.int64)) is None

    def test_nnz_and_support(self):
        graph = DiGraph.from_edges(4, [(1, 0), (2, 1), (3, 2)])
        tree = revreach_levels(graph, 0, 3, 0.6)
        assert tree.nnz == 4
        assert tree.support().tolist() == [0, 1, 2, 3]


class TestScoresAcrossRepresentations:
    def test_crashsim_byte_identical_dense_vs_sparse(self):
        graph = preferential_attachment(80, 3, directed=True, seed=6)
        params = CrashSimParams(n_r_override=32)
        sparse_tree = revreach_levels(graph, 0, params.l_max, params.c)
        dense_tree = sparse_tree.to_dense()
        by_sparse = crashsim(graph, 0, params=params, tree=sparse_tree, seed=99)
        by_dense = crashsim(graph, 0, params=params, tree=dense_tree, seed=99)
        by_default = crashsim(graph, 0, params=params, seed=99)
        assert np.array_equal(by_sparse.scores, by_dense.scores)
        assert np.array_equal(by_sparse.scores, by_default.scores)
