"""Candidate-tree cache: each candidate's reverse tree is built at most
once per snapshot transition, and cached/advanced trees are bit-exact."""

import numpy as np
import pytest

from repro.core.crashsim_t import crashsim_t
from repro.core.params import CrashSimParams
from repro.core.pruning import CandidateTreeCache
from repro.core.queries import ThresholdQuery
from repro.core.revreach import revreach_levels
from repro.graph.digraph import DiGraph
from repro.graph.temporal import TemporalGraphBuilder

PARAMS = CrashSimParams(c=0.6, epsilon=0.1, n_r_override=600)


class TestCacheUnit:
    def test_tree_for_builds_then_hits(self):
        graph = DiGraph.from_edges(4, [(1, 0), (2, 1), (3, 2)])
        cache = CandidateTreeCache()
        first = cache.tree_for(0, 0, graph, 3, 0.6)
        assert (cache.builds, cache.hits) == (1, 0)
        again = cache.tree_for(0, 0, graph, 3, 0.6)
        assert again is first
        assert (cache.builds, cache.hits) == (1, 1)

    def test_stale_stamp_rebuilds(self):
        graph = DiGraph.from_edges(4, [(1, 0), (2, 1), (3, 2)])
        cache = CandidateTreeCache()
        cache.tree_for(0, 0, graph, 3, 0.6)
        # Stamp 2 ≠ cached stamp 0: the entry is stale (a pruned-away
        # transition happened in between) and must not be served.
        rebuilt = cache.tree_for(0, 2, graph, 3, 0.6)
        assert cache.builds == 2
        assert cache.hits == 0
        assert rebuilt.same_as(revreach_levels(graph, 0, 3, 0.6))

    def test_advance_is_bit_exact_and_recached(self):
        old = DiGraph.from_edges(5, [(1, 0), (2, 1), (3, 2)])
        new = DiGraph.from_edges(5, [(1, 0), (2, 1), (3, 2), (4, 2)])
        cache = CandidateTreeCache()
        prev = cache.tree_for(0, 0, old, 4, 0.6)
        cur = cache.advance(0, prev, 1, new, [(4, 2)], [])
        assert cache.advances == 1
        fresh = revreach_levels(new, 0, 4, 0.6)
        assert cur.same_as(fresh)
        assert np.array_equal(cur.matrix, fresh.matrix)
        # The advanced tree is now the stamped entry for snapshot 1.
        assert cache.tree_for(0, 1, new, 4, 0.6) is cur
        assert cache.builds == 1

    def test_retain_drops_evicted_candidates(self):
        graph = DiGraph.from_edges(4, [(1, 0), (2, 1), (3, 2)])
        cache = CandidateTreeCache()
        for node in range(4):
            cache.tree_for(node, 0, graph, 3, 0.6)
        cache.retain([1, 3])
        assert len(cache) == 2
        cache.tree_for(0, 0, graph, 3, 0.6)
        assert cache.builds == 5  # evicted entry had to be rebuilt


class TestCrashSimTCounters:
    def test_identical_snapshots_build_once_then_cache(self):
        # Delta pruning off keeps the full residual every transition, so
        # difference pruning compares every candidate's trees each time.
        builder = TemporalGraphBuilder(3, directed=True)
        for _ in range(4):
            builder.push_snapshot([(2, 0), (2, 1)])
        temporal = builder.build()
        result = crashsim_t(
            temporal,
            0,
            ThresholdQuery(theta=0.3),
            params=PARAMS,
            seed=2,
            use_delta_pruning=False,
        )
        stats = result.stats
        assert result.survivors == (1,)
        assert stats.difference_pruning_applied == 3  # every transition
        # Candidate 1's tree: one fresh build on the first comparison,
        # cache hits on the remaining two transitions, never rebuilt.
        assert stats.candidate_trees_built == 1
        assert stats.candidate_trees_cached == 2
        assert stats.candidate_trees_advanced == 0  # empty deltas

    def test_churn_near_candidate_advances_cached_tree(self):
        # Source 0's reverse ball is 0 ← 2 (stable in every snapshot);
        # candidate 1's ball also contains 5, whose in-edge (6, 5)
        # toggles — so difference pruning fires (source tree stable) and
        # the candidate tree must be advanced, not rebuilt.
        builder = TemporalGraphBuilder(7, directed=True)
        base = [(2, 0), (2, 1), (5, 1)]
        builder.push_snapshot(base)
        builder.push_snapshot(base + [(6, 5)])
        builder.push_snapshot(base)
        temporal = builder.build()
        result = crashsim_t(
            temporal,
            0,
            ThresholdQuery(theta=0.1),
            params=PARAMS,
            seed=4,
            use_delta_pruning=False,
        )
        stats = result.stats
        assert stats.source_tree_stable == 2
        assert stats.difference_pruning_applied == 2
        assert stats.candidate_trees_built == 1
        assert stats.candidate_trees_cached == 1
        assert stats.candidate_trees_advanced == 2
        # The tree genuinely changed both times, so nothing was carried
        # by difference pruning and the candidate was re-estimated.
        assert stats.candidates_carried == 0

    @pytest.mark.parametrize("use_delta", [True, False])
    def test_cache_leaves_scores_byte_identical(self, use_delta):
        builder = TemporalGraphBuilder(7, directed=True)
        base = [(2, 0), (2, 1), (5, 1), (3, 2)]
        builder.push_snapshot(base)
        builder.push_snapshot(base + [(6, 5)])
        builder.push_snapshot(base)
        builder.push_snapshot(base + [(4, 3)])
        temporal = builder.build()
        kwargs = dict(params=PARAMS, seed=11, use_delta_pruning=use_delta)
        with_pruning = crashsim_t(
            temporal, 0, ThresholdQuery(theta=0.05), **kwargs
        )
        without = crashsim_t(
            temporal,
            0,
            ThresholdQuery(theta=0.05),
            use_difference_pruning=False,
            **kwargs,
        )
        assert with_pruning.survivors == without.survivors
        assert len(with_pruning.history) == len(without.history)
        for left, right in zip(with_pruning.history, without.history):
            assert left.keys() == right.keys()
            for node in left:
                assert left[node] == right[node]

    def test_stats_dict_exposes_cache_counters(self):
        builder = TemporalGraphBuilder(3, directed=True)
        for _ in range(2):
            builder.push_snapshot([(2, 0), (2, 1)])
        temporal = builder.build()
        result = crashsim_t(
            temporal,
            0,
            ThresholdQuery(theta=0.3),
            params=PARAMS,
            seed=2,
            use_delta_pruning=False,
        )
        stats = result.stats.as_dict()
        assert "candidate_trees_built" in stats
        assert "candidate_trees_cached" in stats
        assert "candidate_trees_advanced" in stats
