"""Tests for the temporal query predicates (Definitions 4 and 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.queries import (
    CompositeQuery,
    TemporalQuery,
    ThresholdQuery,
    TrendQuery,
)
from repro.errors import QueryError

score_arrays = arrays(
    dtype=np.float64,
    shape=st.integers(0, 12),
    elements=st.floats(min_value=0.0, max_value=1.0),
)


class TestThresholdQuery:
    def test_masks(self):
        query = ThresholdQuery(theta=0.5)
        scores = np.array([0.2, 0.5, 0.8])
        assert query.initial_mask(scores).tolist() == [False, False, True]
        assert query.step_mask(scores, scores).tolist() == [False, False, True]

    def test_strict_inequality(self):
        query = ThresholdQuery(theta=0.3)
        assert not query.initial_mask(np.array([0.3]))[0]

    def test_invalid_theta(self):
        with pytest.raises(QueryError):
            ThresholdQuery(theta=-0.1)
        with pytest.raises(QueryError):
            ThresholdQuery(theta=1.0)

    def test_protocol_conformance(self):
        assert isinstance(ThresholdQuery(theta=0.1), TemporalQuery)

    @given(score_arrays)
    @settings(max_examples=40, deadline=None)
    def test_step_ignores_previous(self, scores):
        query = ThresholdQuery(theta=0.4)
        jitter = np.zeros_like(scores)
        assert np.array_equal(
            query.step_mask(jitter, scores), query.initial_mask(scores)
        )


class TestTrendQuery:
    def test_increasing(self):
        query = TrendQuery(direction="increasing")
        previous = np.array([0.1, 0.5, 0.3])
        current = np.array([0.2, 0.4, 0.3])
        assert query.step_mask(previous, current).tolist() == [True, False, True]

    def test_decreasing(self):
        query = TrendQuery(direction="decreasing")
        previous = np.array([0.1, 0.5])
        current = np.array([0.2, 0.4])
        assert query.step_mask(previous, current).tolist() == [False, True]

    def test_initial_mask_accepts_all(self):
        query = TrendQuery()
        assert query.initial_mask(np.array([0.0, 1.0, 0.5])).all()

    def test_tolerance_absorbs_noise(self):
        query = TrendQuery(direction="increasing", tolerance=0.05)
        previous = np.array([0.50])
        current = np.array([0.46])
        assert query.step_mask(previous, current)[0]
        assert not query.step_mask(previous, np.array([0.44]))[0]

    def test_invalid_parameters(self):
        with pytest.raises(QueryError):
            TrendQuery(direction="sideways")
        with pytest.raises(QueryError):
            TrendQuery(tolerance=-0.1)

    def test_describe(self):
        assert "increasing" in TrendQuery().describe()
        assert "0.3" in ThresholdQuery(theta=0.3).describe()

    @given(score_arrays)
    @settings(max_examples=40, deadline=None)
    def test_directions_partition_strict_changes(self, scores):
        """With zero tolerance, a strictly changed score passes exactly one
        of the two trend directions; unchanged scores pass both."""
        up = TrendQuery(direction="increasing")
        down = TrendQuery(direction="decreasing")
        previous = np.full_like(scores, 0.5)
        up_mask = up.step_mask(previous, scores)
        down_mask = down.step_mask(previous, scores)
        assert np.array_equal(up_mask | down_mask, np.ones_like(up_mask))
        both = up_mask & down_mask
        assert np.array_equal(both, scores == 0.5)


class TestCompositeQuery:
    def test_all_mode_intersects(self):
        query = CompositeQuery(
            (ThresholdQuery(theta=0.1), TrendQuery(direction="increasing")),
            mode="all",
        )
        previous = np.array([0.2, 0.2, 0.05])
        current = np.array([0.25, 0.05, 0.30])
        # candidate 0: above θ and rising -> keep; 1: falls -> drop;
        # 2: rising and above θ -> keep.
        assert query.step_mask(previous, current).tolist() == [True, False, True]

    def test_any_mode_unions(self):
        query = CompositeQuery(
            (ThresholdQuery(theta=0.5), TrendQuery(direction="increasing")),
            mode="any",
        )
        previous = np.array([0.1, 0.9])
        current = np.array([0.2, 0.6])
        # 0: below θ but rising -> keep; 1: above θ though falling -> keep.
        assert query.step_mask(previous, current).tolist() == [True, True]

    def test_initial_mask_combines(self):
        query = CompositeQuery(
            (ThresholdQuery(theta=0.1), ThresholdQuery(theta=0.5)), mode="all"
        )
        scores = np.array([0.05, 0.3, 0.7])
        assert query.initial_mask(scores).tolist() == [False, False, True]

    def test_single_subquery_is_identity(self):
        inner = ThresholdQuery(theta=0.2)
        composite = CompositeQuery((inner,))
        scores = np.array([0.1, 0.3])
        assert np.array_equal(
            composite.initial_mask(scores), inner.initial_mask(scores)
        )

    def test_describe(self):
        query = CompositeQuery(
            (ThresholdQuery(theta=0.1), TrendQuery()), mode="all"
        )
        assert "&" in query.describe()
        assert "|" in CompositeQuery((TrendQuery(),), mode="any").describe() or True

    def test_protocol_conformance(self):
        assert isinstance(
            CompositeQuery((ThresholdQuery(theta=0.1),)), TemporalQuery
        )

    def test_validation(self):
        with pytest.raises(QueryError):
            CompositeQuery(())
        with pytest.raises(QueryError):
            CompositeQuery((TrendQuery(),), mode="xor")

    def test_nested_composites(self):
        inner = CompositeQuery(
            (ThresholdQuery(theta=0.1), ThresholdQuery(theta=0.2)), mode="any"
        )
        outer = CompositeQuery((inner, TrendQuery()), mode="all")
        previous = np.array([0.15])
        current = np.array([0.15])
        assert outer.step_mask(previous, current).tolist() == [True]
