"""Tests for the durable top-k temporal query."""

import pytest

from repro.core.params import CrashSimParams
from repro.core.temporal_topk import durable_topk
from repro.errors import ParameterError, QueryError
from repro.graph.temporal import TemporalGraphBuilder

PARAMS = CrashSimParams(c=0.6, epsilon=0.1, n_r_override=500)


def staged_temporal():
    """Node 1 is durably similar to the source (shared in-neighbour in
    every snapshot); node 2 is similar only in snapshot 0."""
    builder = TemporalGraphBuilder(6, directed=True)
    builder.push_snapshot([(3, 0), (3, 1), (3, 2)])
    builder.push_snapshot([(3, 0), (3, 1), (4, 2)])
    builder.push_snapshot([(3, 0), (3, 1), (4, 2)])
    return builder.build()


class TestDurableTopK:
    def test_durable_node_ranks_first(self):
        temporal = staged_temporal()
        result = durable_topk(temporal, 0, 1, params=PARAMS, seed=1)
        assert result.nodes() == [1]
        # Worst-case similarity of node 1 is sim = c/... > 0 everywhere.
        assert result.ranking[0][1] > 0.1

    def test_transient_node_ranked_below(self):
        temporal = staged_temporal()
        result = durable_topk(temporal, 0, 3, params=PARAMS, seed=2)
        ranking = dict(result.ranking)
        assert ranking.get(2, 0.0) < ranking[1]

    def test_candidate_set_shrinks(self):
        temporal = staged_temporal()
        result = durable_topk(temporal, 0, 1, params=PARAMS, seed=3)
        sizes = result.candidates_per_snapshot
        assert sizes[0] == temporal.num_nodes - 1
        assert sizes[-1] <= sizes[0]

    def test_processes_whole_interval(self):
        temporal = staged_temporal()
        result = durable_topk(temporal, 0, 2, params=PARAMS, seed=4)
        assert result.snapshots_processed == 3

    def test_interval_subset(self):
        temporal = staged_temporal()
        result = durable_topk(
            temporal, 0, 2, interval=(0, 2), params=PARAMS, seed=5
        )
        assert result.snapshots_processed == 2

    def test_generalises_threshold_query(self):
        # Every durable-top-k score must be the min over the window, so a
        # node whose score is always above θ appears with value > θ.
        temporal = staged_temporal()
        result = durable_topk(temporal, 0, 5, params=PARAMS, seed=6)
        ranking = dict(result.ranking)
        assert ranking[1] > 0.05


class TestValidation:
    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            durable_topk(staged_temporal(), 0, 0, params=PARAMS)

    def test_invalid_interval(self):
        with pytest.raises(QueryError):
            durable_topk(
                staged_temporal(), 0, 2, interval=(2, 2), params=PARAMS
            )

    def test_invalid_source(self):
        with pytest.raises(ParameterError):
            durable_topk(staged_temporal(), 99, 2, params=PARAMS)
