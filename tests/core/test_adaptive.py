"""Adaptive sampling: stopper math, hub cache, and cross-tier identity.

Covers the contract of :mod:`repro.core.adaptive`:

* :func:`plan_rounds` — geometric round grouping, a pure function of the
  shard count shared by the serial and parallel drivers;
* :class:`AdaptiveStopper` — empirical-Bernstein half-widths, convergence,
  and the "never worse metadata" rule for ``achieved_epsilon``;
* :func:`build_hub_cache` / :func:`exact_expectation` — the backward
  recursion must agree with the guarantee suite's einsum oracle, and hub
  tails must be the estimator's exact conditional expectations;
* end-to-end: an adaptive run is byte-identical across serial / thread /
  process execution and any worker count, stops genuinely early on easy
  instances, stays within ε of the exact expectation, and degrades with
  honest metadata when shards are lost.
"""

import numpy as np
import pytest

from repro import faults
from repro.api import single_source
from repro.core.adaptive import (
    AdaptiveStopper,
    build_hub_cache,
    exact_expectation,
    plan_rounds,
    walk_value_bound,
)
from repro.core.crashsim import crashsim
from repro.core.multi_source import crashsim_multi_source
from repro.core.params import CrashSimParams
from repro.core.revreach import revreach_levels
from repro.datasets.example_graph import example_graph
from repro.errors import DegradedResultWarning, ParameterError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi
from repro.parallel import parallel_crashsim, parallel_crashsim_multi_source

EPS = 0.1
PARAMS = CrashSimParams(epsilon=EPS)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(300, 1500, seed=5)


@pytest.fixture(scope="module")
def tree(graph):
    return revreach_levels(graph, 3, PARAMS.l_max, PARAMS.c)


class TestPlanRounds:
    def test_geometric_growth(self):
        assert plan_rounds(63) == [1, 2, 4, 8, 16, 32]

    def test_last_round_absorbs_remainder(self):
        assert plan_rounds(10) == [1, 2, 4, 3]

    @pytest.mark.parametrize("n", [0, 1, 2, 7, 63, 64, 65, 1000])
    def test_sums_to_shard_count(self, n):
        rounds = plan_rounds(n)
        assert sum(rounds) == n
        assert all(size >= 1 for size in rounds) or n == 0

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            plan_rounds(-1)


class TestAdaptiveStopper:
    def test_zero_estimates_trivially_converged(self):
        stopper = AdaptiveStopper(PARAMS, 0, 0.0, 1)
        assert stopper.converged()
        assert stopper.achieved_epsilon(100) == PARAMS.epsilon

    def test_needs_two_trials(self):
        stopper = AdaptiveStopper(PARAMS, 3, 1.0, 4)
        assert not stopper.converged()
        stopper.update(np.zeros(3), np.zeros(3), 1)
        assert not stopper.converged()
        assert np.all(np.isinf(stopper.half_widths()))

    def test_zero_variance_converges_fast(self):
        stopper = AdaptiveStopper(PARAMS, 2, 1.0, 4)
        # A constant stream: variance 0, only the 7b·ln/(3(t−1)) term left.
        value = 0.25
        t = 2000
        stopper.update(
            np.full(2, value * t), np.full(2, value * value * t), t
        )
        assert stopper.converged()
        assert stopper.bound_epsilon() < EPS

    def test_mismatched_update_rejected(self):
        stopper = AdaptiveStopper(PARAMS, 3, 1.0, 1)
        with pytest.raises(ParameterError):
            stopper.update(np.zeros(2), np.zeros(2), 1)

    def test_negative_trials_rejected(self):
        stopper = AdaptiveStopper(PARAMS, 1, 1.0, 1)
        with pytest.raises(ParameterError):
            stopper.update(np.zeros(1), np.zeros(1), -1)

    def test_achieved_never_worse_than_chernoff(self):
        # Adversarially noisy stream: the EB bound is useless, so the
        # inverted Lemma-3 bound must cap the reported ε.
        stopper = AdaptiveStopper(PARAMS, 1, 5.0, 4)
        rng = np.random.default_rng(0)
        values = rng.uniform(0.0, 5.0, size=50)
        stopper.update(
            np.array([values.sum()]), np.array([(values**2).sum()]), 50
        )
        chernoff = PARAMS.achieved_epsilon(300, 50)
        assert stopper.achieved_epsilon(300) <= chernoff

    def test_no_trials_reports_range(self):
        stopper = AdaptiveStopper(PARAMS, 2, 1.0, 1)
        assert stopper.achieved_epsilon(300) == 1.0


class TestExactExpectationAndHubs:
    def test_exact_expectation_matches_einsum_oracle(self):
        # The O(l_max·m) backward recursion vs the guarantee suite's
        # stacked-tree einsum, off-diagonal (the l=0 term is source-only).
        g = example_graph()
        params = CrashSimParams()
        trees = [
            revreach_levels(g, s, params.l_max, params.c).matrix
            for s in range(g.num_nodes)
        ]
        stacked = np.stack(trees)
        oracle = np.einsum("ulk,vlk->uv", stacked, stacked)
        for source in range(g.num_nodes):
            tree = revreach_levels(g, source, params.l_max, params.c)
            exact = exact_expectation(
                g, tree, l_max=params.l_max, c=params.c
            )
            others = np.arange(g.num_nodes) != source
            np.testing.assert_allclose(
                exact[others], oracle[source][others], atol=1e-12
            )

    def test_hub_tails_are_exact_step0_expectations(self, graph, tree):
        cache = build_hub_cache(
            graph, tree, l_max=PARAMS.l_max, c=PARAMS.c, num_hubs=16
        )
        exact = exact_expectation(graph, tree, l_max=PARAMS.l_max, c=PARAMS.c)
        np.testing.assert_allclose(cache.tails[0], exact[cache.hubs])

    def test_hub_selection_deterministic_with_ties(self):
        # in-degrees: node 3 → 2, nodes 0,1 → 1 each (tie broken low id).
        g = DiGraph.from_edges(5, [(1, 3), (2, 3), (3, 0), (4, 1)])
        cache = build_hub_cache(g, np.zeros((3, 5)), l_max=2, c=0.6, num_hubs=2)
        assert cache.hubs.tolist() == [0, 3]

    def test_no_eligible_hubs_returns_none(self):
        g = DiGraph.from_edges(4, [])
        assert build_hub_cache(g, np.zeros((3, 4)), l_max=2, c=0.6) is None
        g2 = DiGraph.from_edges(4, [(0, 1)])
        assert (
            build_hub_cache(g2, np.zeros((3, 4)), l_max=2, c=0.6, num_hubs=0)
            is None
        )

    def test_value_bound_sparse_matches_dense(self, tree):
        sparse_bound = walk_value_bound(tree, PARAMS.l_max)
        dense_bound = walk_value_bound(tree.matrix, PARAMS.l_max)
        assert sparse_bound == pytest.approx(dense_bound)
        assert sparse_bound >= 0.0

    def test_hub_cache_preserves_the_estimate(self, graph, tree):
        # Rao-Blackwellisation must not move the estimator's target: with
        # and without the hub cache, both adaptive means stay within ε of
        # the exact expectation (deterministic at pinned seeds).
        from repro.core.adaptive import adaptive_crash_totals

        targets = np.flatnonzero(graph.in_degrees() > 0)
        targets = targets[targets != 3]
        exact = exact_expectation(graph, tree, l_max=PARAMS.l_max, c=PARAMS.c)
        for num_hubs in (0, 64):
            outcome = adaptive_crash_totals(
                graph,
                tree,
                targets,
                PARAMS,
                num_nodes=graph.num_nodes,
                seed=17,
                num_hubs=num_hubs,
            )
            mean = outcome.totals / max(outcome.trials_used, 1)
            assert np.abs(mean - exact[targets]).max() <= EPS


class TestAdaptiveEndToEnd:
    def test_stops_early_within_epsilon(self, graph, tree):
        result = crashsim(graph, 3, params=PARAMS, seed=42, adaptive=True)
        assert result.stopped_early
        assert not result.degraded
        assert result.trials_completed < result.n_r // 2
        assert result.achieved_epsilon <= EPS
        exact = exact_expectation(graph, tree, l_max=PARAMS.l_max, c=PARAMS.c)
        dense = np.zeros(graph.num_nodes)
        dense[result.candidates] = result.scores
        walkable = np.flatnonzero(graph.in_degrees() > 0)
        walkable = walkable[walkable != 3]
        assert np.abs(dense[walkable] - exact[walkable]).max() <= EPS

    @pytest.mark.parametrize("mode", ["thread", "process"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_byte_identical_across_tiers(self, graph, mode, workers):
        serial = crashsim(graph, 3, params=PARAMS, seed=42, adaptive=True)
        parallel = parallel_crashsim(
            graph, 3, params=PARAMS, seed=42, workers=workers, mode=mode,
            adaptive=True,
        )
        assert np.array_equal(serial.scores, parallel.scores)
        assert serial.trials_completed == parallel.trials_completed
        assert serial.stopped_early == parallel.stopped_early
        assert serial.achieved_epsilon == parallel.achieved_epsilon

    def test_jit_toggle_does_not_change_bits(self, graph, monkeypatch):
        baseline = crashsim(graph, 3, params=PARAMS, seed=42, adaptive=True)
        monkeypatch.setenv("REPRO_JIT", "1")
        toggled = crashsim(graph, 3, params=PARAMS, seed=42, adaptive=True)
        assert np.array_equal(baseline.scores, toggled.scores)
        assert baseline.trials_completed == toggled.trials_completed

    def test_multi_source_identical_serial_vs_parallel(self, graph):
        sources = [3, 7, 11]
        serial = crashsim_multi_source(
            graph, sources, params=PARAMS, seed=99, adaptive=True
        )
        for mode in ("thread", "process"):
            parallel = parallel_crashsim_multi_source(
                graph, sources, params=PARAMS, seed=99, workers=2, mode=mode,
                adaptive=True,
            )
            for a, b in zip(serial, parallel):
                assert np.array_equal(a.scores, b.scores)
                assert a.trials_completed == b.trials_completed
                assert a.stopped_early == b.stopped_early

    def test_multi_source_crn_shares_one_trial_budget(self, graph):
        # CRN design: all sources stop together on the shared walk stream,
        # so every per-source result reports the same trial count.
        results = crashsim_multi_source(
            graph, [3, 7, 11], params=PARAMS, seed=99, adaptive=True
        )
        counts = {r.trials_completed for r in results}
        assert len(counts) == 1
        assert counts.pop() < results[0].n_r

    def test_non_adaptive_path_untouched(self, graph):
        fixed = crashsim(graph, 3, params=PARAMS, seed=42)
        again = crashsim(graph, 3, params=PARAMS, seed=42, adaptive=False)
        assert np.array_equal(fixed.scores, again.scores)
        assert fixed.trials_completed == fixed.n_r
        assert not fixed.stopped_early

    def test_first_meeting_not_supported(self, graph):
        with pytest.raises(ParameterError):
            crashsim(
                graph, 3, params=PARAMS, seed=1, adaptive=True,
                first_meeting="reset",
            )

    def test_api_guard_non_crashsim_method(self, graph):
        with pytest.raises(ParameterError):
            single_source(graph, 3, method="naive-mc", adaptive=True)

    def test_api_carries_stopped_early(self, graph):
        scores = single_source(
            graph, 3, epsilon=EPS, seed=42, adaptive=True
        )
        assert scores.stopped_early
        assert not scores.degraded
        assert scores.achieved_epsilon <= EPS
        direct = crashsim(graph, 3, params=PARAMS, seed=42, adaptive=True)
        dense = np.zeros(graph.num_nodes)
        dense[direct.candidates] = direct.scores
        dense[3] = 1.0
        assert np.array_equal(np.asarray(scores), dense)

    def test_deadline_composes_without_changing_bits(self, graph):
        # A generous deadline must not perturb the adaptive plan: the run
        # converges before the budget matters and returns full quality.
        plain = parallel_crashsim(
            graph, 3, params=PARAMS, seed=42, workers=2, mode="thread",
            adaptive=True,
        )
        bounded = parallel_crashsim(
            graph, 3, params=PARAMS, seed=42, workers=2, mode="thread",
            adaptive=True, deadline=60.0,
        )
        assert np.array_equal(plain.scores, bounded.scores)
        assert bounded.stopped_early and not bounded.degraded
        assert bounded.trials_completed == plain.trials_completed


class TestAdaptiveDegradation:
    def test_lost_shards_degrade_with_honest_metadata(self, graph):
        # ε far below what 64 trials can certify → the stopper never
        # converges; one persistently failing shard loses 4 trials and the
        # result must say so, with the Chernoff-capped honest ε.
        params = CrashSimParams(epsilon=0.025, n_r_override=64)
        with faults.active({"shard": {"1": {"kind": "raise", "times": 99}}}):
            with pytest.warns(DegradedResultWarning):
                result = parallel_crashsim(
                    graph, 3, params=params, seed=123, workers=2,
                    mode="thread", shards=16, adaptive=True,
                )
        assert result.degraded
        assert not result.stopped_early
        assert result.trials_completed == 60
        assert (
            result.achieved_epsilon
            <= params.achieved_epsilon(graph.num_nodes, 60)
        )

    def test_exhausted_run_not_degraded(self, graph):
        # Too few trials to converge, but none lost: the run is honest
        # about the wider ε yet is NOT degraded — it did everything asked.
        params = CrashSimParams(epsilon=0.025, n_r_override=64)
        result = parallel_crashsim(
            graph, 3, params=params, seed=123, workers=2, mode="thread",
            shards=16, adaptive=True,
        )
        assert not result.degraded
        assert not result.stopped_early
        assert result.trials_completed == 64
        assert result.achieved_epsilon > params.epsilon


class TestAdaptiveMetrics:
    def test_stop_counters_advance(self, graph):
        from repro import obs

        rounds = obs.REGISTRY.counter("repro_adaptive_rounds_total")
        saved = obs.REGISTRY.counter("repro_adaptive_trials_saved_total")
        stops = obs.REGISTRY.counter("repro_adaptive_stops_total")
        before = (rounds.value, saved.value, stops.value)
        result = crashsim(graph, 3, params=PARAMS, seed=42, adaptive=True)
        assert rounds.value > before[0]
        assert saved.value - before[1] == result.n_r - result.trials_completed
        assert stops.value == before[2] + 1
        assert (
            stops.labels(reason="converged").value > 0
        )


class TestEngineAdaptive:
    def test_engine_matches_direct_call(self, graph):
        from repro.serve import Engine, EngineConfig

        config = EngineConfig(epsilon=EPS, seed=11, adaptive=True)
        engine = Engine(graph, config)
        try:
            answer = engine.query(3, seed=42)
        finally:
            engine.close()
        direct = single_source(graph, 3, epsilon=EPS, seed=42, adaptive=True)
        assert np.array_equal(np.asarray(answer.scores), np.asarray(direct))
        assert answer.scores.stopped_early
        assert answer.scores.trials_completed == direct.trials_completed
