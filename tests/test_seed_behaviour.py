"""Byte-identity against the pinned seed-behaviour fixture.

``tests/fixtures/seed_behaviour.json`` captures the exact float bit
patterns (``float.hex``) that fixed-seed CrashSim / CrashSim-T / parallel
runs produced *before* the sparse-tree refactor.  These tests replay the
same runs and demand bit-equality, so any representation change that
perturbs a single ULP — or touches the RNG stream — fails loudly.

Regenerate (only when behaviour is *intended* to change) with:
``PYTHONPATH=src python tests/fixtures/make_seed_behaviour.py``.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.core.crashsim import crashsim
from repro.core.crashsim_t import crashsim_t
from repro.core.params import CrashSimParams
from repro.core.queries import ThresholdQuery
from repro.core.revreach import revreach_levels
from repro.graph.generators import evolve_snapshots, preferential_attachment
from repro.parallel import parallel_crashsim

FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "seed_behaviour.json"
PARAMS = CrashSimParams(n_r_override=64)


@pytest.fixture(scope="module")
def pinned():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def graph():
    return preferential_attachment(120, 3, directed=True, seed=5)


def to_hex(values):
    return [float.hex(float(v)) for v in values]


class TestStatic:
    def test_crashsim_scores_bit_exact(self, pinned, graph):
        result = crashsim(graph, 0, params=PARAMS, seed=123)
        assert result.candidates.tolist() == pinned["static"]["candidates"]
        assert result.n_r == pinned["static"]["n_r"]
        assert to_hex(result.scores) == pinned["static"]["scores"]

    def test_crashsim_scores_bit_exact_with_dense_tree(self, pinned, graph):
        # Feeding the legacy dense representation through the same run must
        # reproduce the very same bits — sparse is a pure re-encoding.
        tree = revreach_levels(graph, 0, PARAMS.l_max, PARAMS.c, dense=True)
        result = crashsim(graph, 0, params=PARAMS, tree=tree, seed=123)
        assert to_hex(result.scores) == pinned["static"]["scores"]

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_parallel_matches_pinned_bits(self, pinned, graph, workers):
        # Seed-sharded execution is worker-count invariant, so every
        # worker count must reproduce the pinned workers=1 bits.  The
        # fixture predates shard autotuning, so the legacy 16-shard
        # layout is pinned explicitly (the plan defines the RNG streams).
        result = parallel_crashsim(
            graph, 0, params=PARAMS, seed=123, workers=workers, shards=16
        )
        assert result.candidates.tolist() == pinned["parallel_w1"]["candidates"]
        assert to_hex(result.scores) == pinned["parallel_w1"]["scores"]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_parallel_autotuned_matches_pinned_bits(self, pinned, graph, workers):
        # The autotuned plan is a pure function of the query shape, so it
        # too is pinned — at any worker count.
        result = parallel_crashsim(
            graph, 0, params=PARAMS, seed=123, workers=workers
        )
        assert (
            result.candidates.tolist() == pinned["parallel_auto"]["candidates"]
        )
        assert to_hex(result.scores) == pinned["parallel_auto"]["scores"]


class TestTemporal:
    @pytest.mark.parametrize("label,kwargs", [
        ("pruned", dict(use_delta_pruning=True, use_difference_pruning=True)),
        ("diff_only", dict(use_delta_pruning=False, use_difference_pruning=True)),
        ("unpruned", dict(use_delta_pruning=False, use_difference_pruning=False)),
    ])
    def test_crashsim_t_bit_exact(self, pinned, graph, label, kwargs):
        temporal = evolve_snapshots(graph, 6, churn_rate=0.01, seed=9)
        result = crashsim_t(
            temporal,
            0,
            ThresholdQuery(theta=0.001),
            params=PARAMS,
            seed=77,
            **kwargs,
        )
        expected = pinned["crashsim_t"][label]
        assert list(result.survivors) == expected["survivors"]
        assert len(result.history) == len(expected["history"])
        for snap, pinned_snap in zip(result.history, expected["history"]):
            got = {str(node): float.hex(float(s)) for node, s in snap.items()}
            assert got == pinned_snap
