"""Smoke + shape tests for the experiment runners (tiny profile)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.ablation import run_estimator_ablation, run_pruning_ablation
from repro.experiments.config import ExperimentProfile, PROFILES, get_profile
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import make_queries, run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.report import format_table, format_value
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3

TINY = ExperimentProfile(
    name="tiny",
    scale=0.01,
    datasets=("hepth",),
    fig5_repetitions=2,
    crashsim_epsilons=(0.1, 0.025),
    n_r_cap=40,
    probesim_n_r=40,
    sling_d_samples=10,
    reads_r=10,
    reads_r_q=2,
    reads_t=8,
    fig6_snapshots=3,
    fig6_sources=1,
    threshold_theta=0.05,
    fig7_snapshot_counts=(2, 3),
)


class TestProfiles:
    def test_registry_names(self):
        assert set(PROFILES) == {"quick", "default", "full"}

    def test_get_profile_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert get_profile().name == "quick"
        monkeypatch.setenv("REPRO_PROFILE", "default")
        assert get_profile().name == "default"

    def test_unknown_profile(self):
        with pytest.raises(ExperimentError):
            get_profile("nope")


class TestTable2:
    def test_rows(self):
        rows = run_table2()
        assert [row["node"] for row in rows] == list("ABCDEFGH")
        assert rows[0]["sim(A, node)"] == 1.0
        assert all(0.0 <= row["sim(A, node)"] <= 1.0 for row in rows)

    def test_stable_under_more_iterations(self):
        a = {row["node"]: row["sim(A, node)"] for row in run_table2()}
        b = {
            row["node"]: row["sim(A, node)"]
            for row in run_table2(iterations=80)
        }
        for node in a:
            assert a[node] == pytest.approx(b[node], abs=1e-6)


class TestTable3:
    def test_rows_cover_profile_datasets(self):
        rows = run_table3(TINY)
        assert [row["dataset"] for row in rows] == list(TINY.datasets)
        for row in rows:
            assert row["synth_n"] > 0
            assert row["synth_m"] > 0


class TestFigure5:
    def test_rows_structure(self):
        rows = run_figure5(TINY)
        algorithms = {row["algorithm"] for row in rows}
        assert "probesim" in algorithms
        assert "sling" in algorithms
        assert "reads" in algorithms
        assert any(a.startswith("crashsim") for a in algorithms)
        for row in rows:
            assert row["mean_time_s"] >= 0.0
            assert 0.0 <= row["mean_ME"] <= 1.0
            assert row["queries"] == TINY.fig5_repetitions

    def test_epsilon_sweep_trades_time_for_error(self):
        rows = run_figure5(TINY)
        crash = [r for r in rows if r["algorithm"].startswith("crashsim")]
        loose = next(r for r in crash if "0.1" in r["algorithm"])
        tight = next(r for r in crash if "0.025" in r["algorithm"])
        # Tighter ε runs more trials, hence at least as slow.
        assert tight["mean_time_s"] >= loose["mean_time_s"] * 0.5


class TestFigure6:
    def test_rows_structure(self):
        rows = run_figure6(TINY)
        queries = {row["query"] for row in rows}
        assert queries == {"trend", "threshold"}
        for row in rows:
            assert 0.0 <= row["precision"] <= 1.0

    def test_make_queries(self):
        queries = make_queries(TINY)
        assert set(queries) == {"trend", "threshold"}

    def test_oracle_survivor_sets_match_adapter(self):
        """The batched oracle must answer exactly like the per-source
        power-method adapter."""
        from repro.baselines.temporal_adapters import (
            make_snapshot_algorithm,
            temporal_query_by_recompute,
        )
        from repro.core.queries import ThresholdQuery
        from repro.datasets.registry import load_dataset
        from repro.experiments.figure6 import oracle_survivor_sets

        temporal = load_dataset("hepth", scale=0.01, num_snapshots=3, seed=0)
        query = ThresholdQuery(theta=0.03)
        sources = [0, 5, 11]
        batched = oracle_survivor_sets(temporal, sources, query, c=0.6)
        for source in sources:
            adapter = make_snapshot_algorithm("power", c=0.6)
            expected = temporal_query_by_recompute(
                temporal, source, query, adapter
            ).survivor_set
            assert batched[source] == expected, source


class TestFigure7:
    def test_series_structure(self):
        rows = run_figure7(TINY, dataset="hepth")
        counts = sorted({row["snapshots"] for row in rows})
        assert counts == [2, 3]
        algorithms = {row["algorithm"] for row in rows}
        assert algorithms == {"crashsim_t", "probesim", "sling", "reads"}
        assert all(row["total_time_s"] >= 0 for row in rows)


class TestAblations:
    def test_pruning_ablation_rows(self):
        rows = run_pruning_ablation(TINY, dataset="hepth")
        labels = [row["pruning"] for row in rows]
        assert labels == ["none", "delta_only", "difference_only", "both"]
        none_row = rows[0]
        assert none_row["carried"] == 0

    def test_estimator_ablation_rows(self):
        rows = run_estimator_ablation(TINY, dataset="hepth", num_sources=1)
        combos = {(r["tree_variant"], r["first_meeting"]) for r in rows}
        assert combos == {
            ("corrected", "none"),
            ("corrected", "dp"),
            ("paper", "none"),
            ("paper", "dp"),
        }


class TestScalability:
    def test_rows_cover_scales_and_algorithms(self):
        from repro.experiments.scalability import run_scalability

        rows = run_scalability(
            TINY, dataset="hepth", scales=(0.01, 0.02), repetitions=1
        )
        scales = sorted({row["scale"] for row in rows})
        assert scales == [0.01, 0.02]
        algorithms = {row["algorithm"] for row in rows}
        assert algorithms == {
            "crashsim",
            "probesim",
            "sling_query",
            "reads_query",
        }
        by_scale = {
            scale: next(
                r["n"] for r in rows if r["scale"] == scale
            )
            for scale in scales
        }
        assert by_scale[0.02] > by_scale[0.01]


class TestSensitivity:
    def test_c_sweep_rows(self):
        from repro.experiments.sensitivity import run_c_sensitivity

        rows = run_c_sensitivity(
            TINY, dataset="hepth", c_values=(0.4, 0.6), repetitions=1
        )
        assert len(rows) == 4
        by_c = {
            (row["c"], row["algorithm"]): row["l_max"] for row in rows
        }
        # l_max grows with c (Lemma 1's formula).
        assert by_c[(0.6, "crashsim")] > by_c[(0.4, "crashsim")]

    def test_theta_sweep_rows(self):
        from repro.experiments.sensitivity import run_theta_sensitivity

        rows = run_theta_sensitivity(TINY, dataset="hepth", thetas=(0.01, 0.2))
        assert [row["theta"] for row in rows] == [0.01, 0.2]
        # A stricter threshold cannot keep more survivors.
        assert rows[1]["survivors"] <= rows[0]["survivors"]


class TestReport:
    def test_format_value(self):
        assert format_value(0.123456) == "0.1235"
        assert format_value(1.5e-7) == "1.500e-07"
        assert format_value(3) == "3"
        assert format_value("x") == "x"
        assert format_value(0.0) == "0"

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_series(self):
        from repro.experiments.report import format_series

        rows = [
            {"snapshots": 10, "algorithm": "a", "t": 1.0},
            {"snapshots": 20, "algorithm": "a", "t": 2.0},
            {"snapshots": 10, "algorithm": "bb", "t": 0.5},
            {"snapshots": 20, "algorithm": "bb", "t": 4.0},
        ]
        text = format_series(rows, x="snapshots", y="t", group="algorithm")
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert lines[1].startswith("bb")
        # The global maximum (bb at 20) renders as the tallest block.
        assert "█" in lines[1]
        assert "x: 10, 20" in lines[-1]

    def test_format_series_empty(self):
        from repro.experiments.report import format_series

        assert "(no rows)" in format_series([], x="x", y="y", group="g")
