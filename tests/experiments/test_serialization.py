"""Tests for JSON result serialization."""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.serialization import load_rows, rows_differ, save_rows

ROWS = [
    {"dataset": "hepth", "algorithm": "crashsim", "mean_time_s": 0.01, "mean_ME": 0.02},
    {"dataset": "hepth", "algorithm": "probesim", "mean_time_s": 0.03, "mean_ME": 0.01},
]


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = save_rows(
            ROWS, tmp_path / "out" / "fig5.json", experiment="fig5", profile="quick"
        )
        rows, meta = load_rows(path)
        assert rows == ROWS
        assert meta["experiment"] == "fig5"
        assert meta["profile"] == "quick"
        assert meta["format_version"] == 1

    def test_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_rows(tmp_path / "nope.json")

    def test_wrong_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ExperimentError):
            load_rows(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"format_version": 99, "rows": []}))
        with pytest.raises(ExperimentError):
            load_rows(path)


class TestDiff:
    def test_identical(self):
        assert rows_differ(ROWS, ROWS) == []

    def test_timing_fields_ignored(self):
        noisy = [dict(row, mean_time_s=row["mean_time_s"] * 10) for row in ROWS]
        assert rows_differ(ROWS, noisy) == []

    def test_numeric_drift_within_tolerance(self):
        close = [dict(row, mean_ME=row["mean_ME"] * 1.1) for row in ROWS]
        assert rows_differ(ROWS, close) == []

    def test_numeric_drift_beyond_tolerance(self):
        far = [dict(row, mean_ME=row["mean_ME"] * 3) for row in ROWS]
        problems = rows_differ(ROWS, far)
        assert len(problems) == 2
        assert "mean_ME" in problems[0]

    def test_categorical_change(self):
        changed = [dict(ROWS[0], algorithm="sling"), ROWS[1]]
        problems = rows_differ(ROWS, changed)
        assert any("algorithm" in p for p in problems)

    def test_row_count_change(self):
        assert rows_differ(ROWS, ROWS[:1]) == [
            "row count changed: 2 -> 1"
        ]


class TestCliIntegration:
    def test_save_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "table2.json"
        assert main(["table2", "--save", str(out)]) == 0
        rows, meta = load_rows(out)
        assert meta["experiment"] == "table2"
        assert len(rows) == 8
