"""Tests for the one-shot markdown report."""

import pytest

from repro.experiments.full_report import _markdown_table, generate_report, write_report
from tests.experiments.test_experiments import TINY


class TestMarkdownTable:
    def test_renders_rows(self):
        text = _markdown_table([{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25}])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 0.5 |"

    def test_empty(self):
        assert "(no rows)" in _markdown_table([])


class TestReportGeneration:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(TINY)

    def test_header(self, report):
        assert report.startswith("# CrashSim reproduction report")
        assert "profile: `tiny`" in report

    def test_all_sections_present(self, report):
        for title in (
            "Table II",
            "Table III",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "Pruning ablation",
            "Estimator ablation",
            "Scalability",
            "Sensitivity — decay factor c",
            "Sensitivity — threshold θ",
        ):
            assert title in report, title

    def test_write_report(self, tmp_path, report, monkeypatch):
        import repro.experiments.full_report as module

        monkeypatch.setattr(module, "generate_report", lambda profile=None: report)
        path = write_report(tmp_path / "sub" / "report.md", TINY)
        assert path.read_text() == report

    def test_cli_requires_out(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["report"])
