"""Fused-kernel byte-identity harness against the pinned seed fixtures.

``tests/test_seed_behaviour.py`` pins the production entry points; this
harness pins the *kernel* specifically: every execution surface the fused
walk–crash kernel serves — the serial estimator, seed-sharded parallel
execution, the streaming temporal session — must reproduce the fixture's
exact float bit patterns on the default ``sampler="cdf"``, and the numba
path (when the ``[jit]`` extra is installed, e.g. under ``REPRO_JIT=1`` in
the optional CI leg) must reproduce the same bits again.

Regenerating the fixture is reserved for *intended* behaviour changes:
``PYTHONPATH=src python tests/fixtures/make_seed_behaviour.py``.
"""

import json
import pathlib

import pytest

from repro.core.crashsim import crashsim
from repro.core.params import CrashSimParams
from repro.core.queries import ThresholdQuery
from repro.core.streaming import TemporalQuerySession
from repro.graph.generators import evolve_snapshots, preferential_attachment
from repro.parallel import parallel_crashsim
from repro.walks import _jit
from repro.walks.kernel import WalkCrashKernel

FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "seed_behaviour.json"
PARAMS = CrashSimParams(n_r_override=64)

needs_numba = pytest.mark.skipif(
    not _jit.available(), reason="numba not installed (the [jit] extra)"
)


@pytest.fixture(scope="module")
def pinned():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def graph():
    return preferential_attachment(120, 3, directed=True, seed=5)


def to_hex(values):
    return [float.hex(float(v)) for v in values]


def assert_static_bits(pinned, result):
    assert result.candidates.tolist() == pinned["static"]["candidates"]
    assert to_hex(result.scores) == pinned["static"]["scores"]


def run_session(graph, sampler="cdf"):
    temporal = evolve_snapshots(graph, 6, churn_rate=0.01, seed=9)
    session = TemporalQuerySession(
        0,
        ThresholdQuery(theta=0.001),
        params=PARAMS,
        seed=77,
        sampler=sampler,
    )
    history = []
    for index in range(temporal.num_snapshots):
        session.push_snapshot(temporal.snapshot(index))
        history.append(dict(session.scores))
    return session, history


class TestDefaultSamplerIsPinned:
    def test_serial_kernel_path(self, pinned, graph):
        result = crashsim(graph, 0, params=PARAMS, seed=123, sampler="cdf")
        assert_static_bits(pinned, result)

    def test_kernel_buffer_reuse_reproduces_pinned_bits(self, pinned, graph):
        # Warm buffers from an unrelated accumulate must not perturb the
        # pinned run: a reused kernel is bit-equivalent to a fresh one.
        kernel = WalkCrashKernel(graph, PARAMS.c)
        warmup = crashsim(graph, 7, params=PARAMS, seed=5)
        assert warmup.scores.size  # the warm-up actually ran
        result = crashsim(graph, 0, params=PARAMS, seed=123)
        assert_static_bits(pinned, result)
        del kernel

    def test_parallel_workers4(self, pinned, graph):
        result = parallel_crashsim(
            graph, 0, params=PARAMS, seed=123, workers=4, sampler="cdf",
            shards=16,
        )
        assert result.candidates.tolist() == pinned["parallel_w1"]["candidates"]
        assert to_hex(result.scores) == pinned["parallel_w1"]["scores"]

    def test_temporal_session(self, pinned, graph):
        # The streaming session replays batch CrashSim-T (pruned defaults)
        # snapshot by snapshot; its per-snapshot alive-candidate scores
        # must land on the pinned bits.
        _, history = run_session(graph)
        expected = pinned["crashsim_t"]["pruned"]["history"]
        assert len(history) == len(expected)
        assert sum(len(snap) for snap in history) > 0  # not vacuous
        for snap, pinned_snap in zip(history, expected):
            got = {str(node): float.hex(float(s)) for node, s in snap.items()}
            # The session only reports candidates still alive; every one of
            # them must match the batch driver's pinned bits exactly.
            assert got.keys() <= pinned_snap.keys()
            for node, bits in got.items():
                assert bits == pinned_snap[node]


@needs_numba
class TestJitIsPinned:
    """The compiled stepper replays the NumPy op order bit for bit."""

    def test_serial(self, pinned, graph, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "1")
        result = crashsim(graph, 0, params=PARAMS, seed=123)
        assert_static_bits(pinned, result)

    def test_parallel_workers4(self, pinned, graph, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "1")
        result = parallel_crashsim(
            graph, 0, params=PARAMS, seed=123, workers=4, shards=16
        )
        assert to_hex(result.scores) == pinned["parallel_w1"]["scores"]

    def test_thread_tier_workers4(self, pinned, graph, monkeypatch):
        # The nogil thread tier runs the same compiled stepper through
        # per-thread pooled kernels — same shard plan, same bits.
        monkeypatch.setenv("REPRO_JIT", "1")
        result = parallel_crashsim(
            graph, 0, params=PARAMS, seed=123, workers=4, shards=16,
            mode="thread",
        )
        assert to_hex(result.scores) == pinned["parallel_w1"]["scores"]

    def test_temporal_session(self, pinned, graph, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "1")
        _, jit_history = run_session(graph)
        expected = pinned["crashsim_t"]["pruned"]["history"]
        for snap, pinned_snap in zip(jit_history, expected):
            for node, score in snap.items():
                assert float.hex(float(score)) == pinned_snap[str(node)]
