"""Tests for the RNG normalisation utilities."""

import itertools

import numpy as np
import pytest

from repro.rng import ensure_rng, spawn, stream


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passes_through(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        a = ensure_rng(np.random.SeedSequence(7)).random(3)
        b = ensure_rng(seq).random(3)
        assert np.array_equal(a, b)

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("forty-two")


class TestSpawn:
    def test_children_are_independent(self):
        parent = ensure_rng(0)
        children = spawn(parent, 3)
        draws = [child.random(4).tolist() for child in children]
        assert draws[0] != draws[1] != draws[2]

    def test_parent_unaffected_reproducibly(self):
        a = ensure_rng(5)
        spawn(a, 2)
        after_spawn = a.random(3)
        b = ensure_rng(5)
        spawn(b, 2)
        assert np.array_equal(after_spawn, b.random(3))

    def test_repeated_spawns_differ(self):
        parent = ensure_rng(1)
        first = spawn(parent, 1)[0].random(3)
        second = spawn(parent, 1)[0].random(3)
        assert not np.array_equal(first, second)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)

    def test_zero_count(self):
        assert spawn(ensure_rng(0), 0) == []


class TestStream:
    def test_yields_fresh_generators(self):
        generators = list(itertools.islice(stream(ensure_rng(3)), 4))
        assert len(generators) == 4
        draws = {tuple(g.random(2).tolist()) for g in generators}
        assert len(draws) == 4

    def test_deterministic_for_seed(self):
        a = [g.random(2).tolist() for g in itertools.islice(stream(ensure_rng(9)), 3)]
        b = [g.random(2).tolist() for g in itertools.islice(stream(ensure_rng(9)), 3)]
        assert a == b
