"""Tests for scalar √c-walk sampling against the geometric law of Lemma 1."""

import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graph.digraph import DiGraph
from repro.walks.sqrt_c import (
    expected_walk_length,
    sample_sqrt_c_walk,
    sample_walk_length,
    walk_length_cdf,
)


class TestSampleWalk:
    def test_walk_follows_in_edges(self, paper_graph, rng):
        for _ in range(50):
            path = sample_sqrt_c_walk(paper_graph, 0, 0.6, seed=rng)
            for previous, current in zip(path, path[1:]):
                assert current in paper_graph.in_neighbors(previous)

    def test_walk_starts_at_source(self, paper_graph, rng):
        path = sample_sqrt_c_walk(paper_graph, 3, 0.6, seed=rng)
        assert path[0] == 3

    def test_max_length_respected(self, paper_graph, rng):
        for _ in range(50):
            path = sample_sqrt_c_walk(paper_graph, 0, 0.9, max_length=4, seed=rng)
            assert len(path) - 1 <= 4

    def test_dead_end_stops_walk(self, rng):
        graph = DiGraph.from_edges(3, [(0, 1)], directed=True)  # I(0) empty
        path = sample_sqrt_c_walk(graph, 0, 0.99, seed=rng)
        assert path == [0]

    def test_invalid_c_rejected(self, paper_graph):
        with pytest.raises(ParameterError):
            sample_sqrt_c_walk(paper_graph, 0, 1.5)
        with pytest.raises(ParameterError):
            sample_sqrt_c_walk(paper_graph, 0, 0.0)

    def test_empirical_length_matches_geometric(self, rng):
        # Complete-ish graph so walks never die at dead ends.
        graph = DiGraph.from_edges(
            6, [(i, j) for i in range(6) for j in range(6) if i != j]
        )
        c = 0.6
        lengths = [
            len(sample_sqrt_c_walk(graph, 0, c, seed=rng)) - 1
            for _ in range(4000)
        ]
        assert np.mean(lengths) == pytest.approx(
            expected_walk_length(c), rel=0.1
        )


class TestLengthDistribution:
    def test_sample_walk_length_mean(self, rng):
        c = 0.6
        lengths = sample_walk_length(c, seed=rng, size=20000)
        assert lengths.min() >= 0
        assert lengths.mean() == pytest.approx(expected_walk_length(c), rel=0.05)

    def test_expected_walk_length_formula(self):
        assert expected_walk_length(0.25) == pytest.approx(0.5 / 0.5)

    def test_cdf_monotone_and_bounded(self):
        c = 0.6
        values = [walk_length_cdf(c, k) for k in range(-1, 30)]
        assert values[0] == 0.0
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] <= 1.0

    def test_cdf_matches_paper_p(self):
        # p = Σ_{k=1..l_max} (√c)^{k-1}(1-√c) = 1 - (√c)^{l_max}: l_max coin
        # flips = l_max - 1 completed continuations.
        c, l_max = 0.6, 35
        p_paper = sum(
            math.sqrt(c) ** (k - 1) * (1 - math.sqrt(c))
            for k in range(1, l_max + 1)
        )
        assert walk_length_cdf(c, l_max - 1) == pytest.approx(p_paper)

    def test_cdf_matches_empirical(self, rng):
        c = 0.6
        lengths = sample_walk_length(c, seed=rng, size=20000)
        for k in (0, 2, 5, 10):
            empirical = float(np.mean(lengths <= k))
            assert empirical == pytest.approx(walk_length_cdf(c, k), abs=0.02)
