"""Fused walk–crash kernel: bit-identity, alias sampling, regressions.

The kernel's contract has two halves:

* with the default ``sampler="cdf"`` it must reproduce the historical
  generator-driven accumulation (`accumulate_crash_totals_reference`)
  **bit for bit** — same RNG draw order, same float operation order;
* with ``sampler="alias"`` it draws neighbours through per-node alias
  tables — a *different* (but exactly distributed) stream, checked here
  by exact pmf reconstruction, a chi-square test, and end-to-end accuracy
  against the Power Method oracle.
"""

import math

import numpy as np
import pytest
import scipy.stats

from repro.baselines.power_method import power_method_all_pairs
from repro.core.crashsim import (
    accumulate_crash_totals,
    accumulate_crash_totals_reference,
    crashsim,
)
from repro.core.params import CrashSimParams
from repro.core.revreach import revreach_levels
from repro.errors import ParameterError
from repro.graph.digraph import DiGraph, build_alias_tables
from repro.graph.generators import preferential_attachment
from repro.parallel.shared_graph import CsrGraphView
from repro.rng import ensure_rng
from repro.walks import _jit
from repro.walks.engine import BatchWalkStepper
from repro.walks.kernel import WalkCrashKernel, fused_accumulate_crash_totals

C = 0.6
L_MAX = 11


def weighted_graph(num_nodes=80, seed=6):
    base = preferential_attachment(num_nodes, 3, directed=True, seed=seed)
    rng = ensure_rng(seed + 1)
    arcs = list(base.edges())
    weights = rng.uniform(0.5, 4.0, size=len(arcs))
    return DiGraph.from_edges(num_nodes, arcs, weights=weights)


def walkable_targets(graph):
    nodes = np.arange(graph.num_nodes, dtype=np.int64)
    return nodes[graph.in_degrees()[nodes] > 0]


@pytest.fixture(scope="module")
def unweighted():
    return preferential_attachment(120, 3, directed=True, seed=5)


@pytest.fixture(scope="module")
def weighted():
    return weighted_graph()


def run_reference(graph, seed=42, walk_chunk=1 << 20, trials=48):
    tree = revreach_levels(graph, 0, L_MAX, C)
    targets = walkable_targets(graph)
    return accumulate_crash_totals_reference(
        graph,
        tree,
        targets,
        trials,
        c=C,
        l_max=L_MAX,
        rng=ensure_rng(seed),
        walk_chunk=walk_chunk,
    )


def run_kernel(graph, seed=42, walk_chunk=1 << 20, trials=48, **kernel_kwargs):
    tree = revreach_levels(graph, 0, L_MAX, C)
    targets = walkable_targets(graph)
    kernel = WalkCrashKernel(graph, C, **kernel_kwargs)
    return kernel.accumulate(
        tree,
        targets,
        trials,
        l_max=L_MAX,
        rng=ensure_rng(seed),
        walk_chunk=walk_chunk,
    )


class TestBitIdentity:
    """Default sampler must replay the generator path's exact bits."""

    def test_unweighted_matches_reference(self, unweighted):
        ref = run_reference(unweighted)
        fused = run_kernel(unweighted)
        assert np.array_equal(ref, fused)
        assert ref.sum() > 0  # non-degenerate run

    def test_weighted_cdf_matches_reference(self, weighted):
        ref = run_reference(weighted)
        fused = run_kernel(weighted, sampler="cdf")
        assert np.array_equal(ref, fused)
        assert ref.sum() > 0

    @pytest.mark.parametrize("walk_chunk", [64, 257, 1 << 20])
    def test_chunk_boundaries_preserve_stream(self, unweighted, walk_chunk):
        # The chunk layout (trials_per_chunk = max(1, walk_chunk // k)) is
        # part of the RNG-stream contract: both sides must chunk the same
        # way and stay identical at every boundary.
        ref = run_reference(unweighted, walk_chunk=walk_chunk)
        fused = run_kernel(unweighted, walk_chunk=walk_chunk)
        assert np.array_equal(ref, fused)

    def test_gather_fallback_bit_identical(self, weighted):
        # Budget 0 forces reads through tree.gather instead of cached dense
        # rows — the floats must be the very same bits either way.
        dense = run_kernel(weighted)
        sparse = run_kernel(weighted, dense_row_budget=0)
        assert np.array_equal(dense, sparse)

    def test_convenience_wrapper_matches(self, unweighted):
        tree = revreach_levels(unweighted, 0, L_MAX, C)
        targets = walkable_targets(unweighted)
        ref = run_reference(unweighted)
        fused = fused_accumulate_crash_totals(
            unweighted,
            tree,
            targets,
            48,
            c=C,
            l_max=L_MAX,
            rng=ensure_rng(42),
        )
        assert np.array_equal(ref, fused)

    def test_accumulate_crash_totals_routes_through_kernel(self, unweighted):
        tree = revreach_levels(unweighted, 0, L_MAX, C)
        targets = walkable_targets(unweighted)
        ref = run_reference(unweighted)
        out = accumulate_crash_totals(
            unweighted, tree, targets, 48, c=C, l_max=L_MAX, rng=ensure_rng(42)
        )
        assert np.array_equal(ref, out)

    def test_kernel_buffer_reuse_across_calls(self, unweighted):
        # A second accumulate on the same kernel (warm buffers) must match
        # a fresh kernel bit for bit — no state leaks between calls.
        tree = revreach_levels(unweighted, 0, L_MAX, C)
        targets = walkable_targets(unweighted)
        kernel = WalkCrashKernel(unweighted, C)
        first = kernel.accumulate(
            tree, targets, 48, l_max=L_MAX, rng=ensure_rng(42)
        )
        warm = kernel.accumulate(
            tree, targets, 48, l_max=L_MAX, rng=ensure_rng(42)
        )
        assert np.array_equal(first, warm)
        assert np.array_equal(first, run_kernel(unweighted))

    def test_steps_processed_counts_live_steps(self, unweighted):
        tree = revreach_levels(unweighted, 0, L_MAX, C)
        targets = walkable_targets(unweighted)
        kernel = WalkCrashKernel(unweighted, C)
        kernel.accumulate(tree, targets, 8, l_max=L_MAX, rng=ensure_rng(0))
        walks = 8 * targets.size
        assert walks <= kernel.steps_processed <= walks * L_MAX


class TestMultiSource:
    def test_single_tree_matches_accumulate(self, unweighted):
        tree = revreach_levels(unweighted, 0, L_MAX, C)
        targets = walkable_targets(unweighted)
        single = WalkCrashKernel(unweighted, C).accumulate(
            tree, targets, 32, l_max=L_MAX, rng=ensure_rng(7)
        )
        multi = WalkCrashKernel(unweighted, C).accumulate_multi(
            [tree], targets, 32, l_max=L_MAX, rng=ensure_rng(7)
        )
        assert multi.shape == (1, targets.size)
        assert np.array_equal(single, multi[0])

    @pytest.mark.parametrize("graph_name", ["unweighted", "weighted"])
    def test_matches_shared_walk_reference(self, graph_name, request):
        # Reference: ONE walk stream (the generator path) scored against
        # every tree — the combined-key bincount must reproduce the
        # per-tree bincounts bit for bit.
        graph = request.getfixturevalue(graph_name)
        sources = [0, 3, 11]
        trees = [revreach_levels(graph, s, L_MAX, C) for s in sources]
        targets = walkable_targets(graph)
        trials = 24

        rng = ensure_rng(99)
        expected = np.zeros((len(trees), targets.size))
        stepper = BatchWalkStepper(graph, C)
        starts = np.tile(targets, trials)
        owner = np.tile(np.arange(targets.size, dtype=np.int64), trials)
        for batch in stepper.walk(starts, L_MAX, seed=rng):
            for row, tree in enumerate(trees):
                expected[row] += np.bincount(
                    owner[batch.walk_ids],
                    weights=tree.gather(batch.step, batch.positions),
                    minlength=targets.size,
                )

        got = WalkCrashKernel(graph, C).accumulate_multi(
            trees, targets, trials, l_max=L_MAX, rng=ensure_rng(99)
        )
        assert np.array_equal(expected, got)


class TestAliasSampler:
    def test_tables_reconstruct_exact_pmf(self, weighted):
        # P(pick local neighbour i at node u) =
        #   (prob[i] + Σ_{j : alias[j] == i} (1 - prob[j])) / deg(u)
        # must equal w_i / W(u) for every node — the alias construction is
        # exact, not approximate.
        prob, alias = weighted.in_alias_tables()
        indptr = weighted.in_indptr
        weights = weighted.in_weights
        totals = weighted.in_weight_totals()
        for node in range(weighted.num_nodes):
            lo, hi = int(indptr[node]), int(indptr[node + 1])
            degree = hi - lo
            if degree == 0:
                continue
            pmf = prob[lo:hi].copy()
            for j in range(degree):
                pmf[alias[lo + j]] += 1.0 - prob[lo + j]
            pmf /= degree
            assert np.allclose(pmf, weights[lo:hi] / totals[node], atol=1e-12)

    def test_table_invariants(self, weighted):
        prob, alias = weighted.in_alias_tables()
        indptr = weighted.in_indptr
        assert np.all((prob >= 0.0) & (prob <= 1.0 + 1e-12))
        for node in range(weighted.num_nodes):
            lo, hi = int(indptr[node]), int(indptr[node + 1])
            if hi > lo:
                assert np.all(alias[lo:hi] >= 0)
                assert np.all(alias[lo:hi] < hi - lo)

    def test_tables_cached_and_readonly(self, weighted):
        first = weighted.in_alias_tables()
        second = weighted.in_alias_tables()
        assert first[0] is second[0] and first[1] is second[1]
        assert not first[0].flags.writeable
        assert not first[1].flags.writeable

    def test_one_draw_trick_chi_square(self):
        # Replay the kernel's one-draw sampling rule against a skewed
        # 5-neighbour node and chi-square the empirical counts.
        weights = np.array([5.0, 1.0, 0.25, 2.75, 1.0])
        indptr = np.array([0, weights.size], dtype=np.int64)
        prob, alias = build_alias_tables(
            indptr, weights, np.array([weights.sum()])
        )
        rng = ensure_rng(2024)
        draws = rng.random(200_000)
        u = draws * weights.size
        cell = u.astype(np.int64)
        np.minimum(cell, weights.size - 1, out=cell)
        frac = u - cell
        reject = frac >= prob[cell]
        cell[reject] = alias[cell[reject]]
        counts = np.bincount(cell, minlength=weights.size)
        expected = weights / weights.sum() * draws.size
        result = scipy.stats.chisquare(counts, expected)
        assert result.pvalue > 1e-3

    def test_crashsim_alias_known_value(self):
        # sim(0, 1) = c · 3/4 on the skewed two-candidate graph.
        graph = DiGraph.from_edges(
            4, [(2, 0), (3, 0), (2, 1)], weights=[3.0, 1.0, 1.0]
        )
        params = CrashSimParams(c=0.6, epsilon=0.05, n_r_override=5000)
        result = crashsim(graph, 0, params=params, seed=1, sampler="alias")
        assert result.score(1) == pytest.approx(0.45, abs=0.03)

    def test_alias_matches_power_method(self, weighted):
        # Theorem-1 style end-to-end accuracy with the alias stream.
        truth = power_method_all_pairs(weighted, C)
        params = CrashSimParams(c=C, epsilon=0.05, n_r_override=1500)
        result = crashsim(weighted, 2, params=params, seed=7, sampler="alias")
        estimate = np.zeros(weighted.num_nodes)
        estimate[result.candidates] = result.scores
        estimate[2] = 1.0
        assert np.abs(truth[2] - estimate).max() < 0.06

    def test_alias_ignored_on_unweighted(self, unweighted):
        # Unweighted sampling is already O(1); alias must be a no-op there
        # and keep the default stream's exact bits.
        assert np.array_equal(
            run_kernel(unweighted),
            run_kernel(unweighted, sampler="alias"),
        )

    def test_unknown_sampler_rejected(self, unweighted):
        with pytest.raises(ParameterError):
            WalkCrashKernel(unweighted, C, sampler="bogus")

    def test_alias_tables_on_unweighted_graph_rejected(self, unweighted):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            unweighted.in_alias_tables()


class TestZeroWeightTotals:
    """A node whose in-weights sum to zero must behave as dangling.

    ``DiGraph`` validation rejects non-positive weights, so the regression
    is only reachable through the duck-typed CSR protocol (attached shared
    memory, external loaders) — exactly where the old CDF clamp silently
    collapsed the choice onto the block's first neighbour.
    """

    @staticmethod
    def zero_total_view():
        # Node 0 has two in-neighbours but zero total weight; node 1 has a
        # normal weighted block.
        indptr = np.array([0, 2, 3, 3], dtype=np.int64)
        indices = np.array([1, 2, 2], dtype=np.int64)
        weights = np.array([0.0, 0.0, 2.0])
        return CsrGraphView(3, indptr, indices, weights)

    def test_stepper_kills_walks(self):
        stepper = BatchWalkStepper(self.zero_total_view(), C)
        batches = list(
            stepper.walk(np.zeros(64, dtype=np.int64), 5, seed=ensure_rng(0))
        )
        assert batches == []

    @pytest.mark.parametrize("sampler", ["cdf", "alias"])
    def test_kernel_accumulates_nothing(self, sampler):
        view = self.zero_total_view()
        kernel = WalkCrashKernel(view, C, sampler=sampler)
        tree = np.full((6, 3), 0.5)  # every crash would score if reached
        totals = kernel.accumulate(
            tree,
            np.zeros(1, dtype=np.int64),
            64,
            l_max=5,
            rng=ensure_rng(0),
        )
        assert np.array_equal(totals, np.zeros(1))

    @pytest.mark.parametrize("sampler", ["cdf", "alias"])
    def test_healthy_node_unaffected(self, sampler):
        # Node 1's positive-weight block keeps walking: one step from 1
        # always reaches 2 (its only in-neighbour) when the coin survives.
        view = self.zero_total_view()
        kernel = WalkCrashKernel(view, C, sampler=sampler)
        tree = np.zeros((6, 3))
        tree[1, 2] = 1.0  # crash value only at node 2, step 1
        totals = kernel.accumulate(
            tree,
            np.ones(1, dtype=np.int64),
            512,
            l_max=5,
            rng=ensure_rng(0),
        )
        # ≈ √c of 512 trials survive the first coin and land on node 2.
        assert totals[0] == pytest.approx(512 * math.sqrt(C), rel=0.1)


class TestDegreeCache:
    def test_in_degrees64_cached_and_readonly(self, unweighted):
        degrees = unweighted.in_degrees64()
        assert degrees is unweighted.in_degrees64()
        assert degrees.dtype == np.int64
        assert not degrees.flags.writeable
        assert np.array_equal(degrees, unweighted.in_degrees())

    def test_stepper_reuses_cached_degrees(self, unweighted):
        stepper = BatchWalkStepper(unweighted, C)
        assert stepper._degrees is unweighted.in_degrees64()

    def test_kernel_reuses_cached_degrees(self, unweighted):
        kernel = WalkCrashKernel(unweighted, C)
        assert kernel._degrees is unweighted.in_degrees64()

    def test_weighted_zero_fix_copies_before_writing(self):
        # The dangling fix must not mutate the shared cached array.
        view = TestZeroWeightTotals.zero_total_view()
        cached = view.in_degrees64()
        before = cached.copy()
        BatchWalkStepper(view, C)
        WalkCrashKernel(view, C)
        assert np.array_equal(cached, before)


class TestJitGating:
    def test_forced_jit_without_numba_raises(self, unweighted):
        if _jit.available():
            pytest.skip("numba installed; force-failure leg not applicable")
        with pytest.raises(ParameterError):
            WalkCrashKernel(unweighted, C, use_jit=True)

    def test_env_toggle_falls_back_silently(self, unweighted, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "1")
        kernel = WalkCrashKernel(unweighted, C)
        if not _jit.available():
            assert not kernel.use_jit
        ref = run_kernel(unweighted, use_jit=False)
        tree = revreach_levels(unweighted, 0, L_MAX, C)
        targets = walkable_targets(unweighted)
        out = kernel.accumulate(
            tree, targets, 48, l_max=L_MAX, rng=ensure_rng(42)
        )
        assert np.array_equal(ref, out)

    @pytest.mark.skipif(not _jit.available(), reason="numba not installed")
    @pytest.mark.parametrize(
        "graph_name,sampler",
        [("unweighted", "cdf"), ("weighted", "cdf"), ("weighted", "alias")],
    )
    def test_jit_bit_identical(self, graph_name, sampler, request):
        graph = request.getfixturevalue(graph_name)
        pure = run_kernel(graph, sampler=sampler, use_jit=False)
        jitted = run_kernel(graph, sampler=sampler, use_jit=True)
        assert np.array_equal(pure, jitted)


class _CountingTree:
    """Delegating tree proxy that counts ``gather`` calls."""

    def __init__(self, tree):
        self._tree = tree
        self.gather_calls = 0

    def __getattr__(self, name):
        return getattr(self._tree, name)

    def gather(self, step, positions):
        self.gather_calls += 1
        return self._tree.gather(step, positions)


class TestDenseRowBudget:
    """The dense U-row cache is all-or-nothing at ``dense_row_budget``.

    ``(l_max + 1) · n · 8`` bytes buys every level row; one byte less and
    every crash read falls back to ``tree.gather``.  The
    ``repro_kernel_dense_row_{hits,misses}_total`` counters must reconcile
    exactly with the gather calls actually made.
    """

    def _run(self, graph, budget):
        from repro import obs

        hits = obs.REGISTRY.counter("repro_kernel_dense_row_hits_total")
        misses = obs.REGISTRY.counter("repro_kernel_dense_row_misses_total")
        tree = _CountingTree(revreach_levels(graph, 0, L_MAX, C))
        targets = walkable_targets(graph)
        kernel = WalkCrashKernel(graph, C, dense_row_budget=budget)
        before = (hits.value, misses.value)
        totals = kernel.accumulate(
            tree, targets, 48, l_max=L_MAX, rng=ensure_rng(42)
        )
        return (
            totals,
            hits.value - before[0],
            misses.value - before[1],
            tree.gather_calls,
        )

    def test_exact_budget_caches_every_row(self, unweighted):
        budget = (L_MAX + 1) * unweighted.num_nodes * 8
        totals, hits, misses, gathers = self._run(unweighted, budget)
        assert hits > 0
        assert misses == 0
        assert gathers == 0

    def test_one_byte_short_falls_back_to_gather(self, unweighted):
        budget = (L_MAX + 1) * unweighted.num_nodes * 8 - 1
        totals, hits, misses, gathers = self._run(unweighted, budget)
        assert hits == 0
        assert misses > 0
        assert misses == gathers

    def test_budget_boundary_preserves_bits(self, unweighted):
        full = (L_MAX + 1) * unweighted.num_nodes * 8
        cached, *_ = self._run(unweighted, full)
        fallback, *_ = self._run(unweighted, full - 1)
        assert np.array_equal(cached, fallback)

    def test_hub_cache_bytes_charged_against_budget(self, unweighted):
        # accumulate_moments deducts the hub cache's bytes first: a budget
        # that exactly fits rows + hub cache keeps the dense rows; one
        # byte less evicts them (misses), without changing the answer.
        from repro import obs
        from repro.core.adaptive import build_hub_cache

        hits_c = obs.REGISTRY.counter("repro_kernel_dense_row_hits_total")
        miss_c = obs.REGISTRY.counter("repro_kernel_dense_row_misses_total")
        tree = revreach_levels(unweighted, 0, L_MAX, C)
        hub_cache = build_hub_cache(
            unweighted, tree, l_max=L_MAX, c=C, num_hubs=8
        )
        targets = walkable_targets(unweighted)
        rows_bytes = (L_MAX + 1) * unweighted.num_nodes * 8
        outputs = []
        deltas = []
        for budget in (
            rows_bytes + hub_cache.nbytes,
            rows_bytes + hub_cache.nbytes - 1,
        ):
            kernel = WalkCrashKernel(unweighted, C, dense_row_budget=budget)
            before = (hits_c.value, miss_c.value)
            outputs.append(
                kernel.accumulate_moments(
                    tree,
                    targets,
                    48,
                    l_max=L_MAX,
                    rng=ensure_rng(42),
                    hub_cache=hub_cache,
                )
            )
            deltas.append((hits_c.value - before[0], miss_c.value - before[1]))
        assert deltas[0][0] > 0 and deltas[0][1] == 0
        assert deltas[1][0] == 0 and deltas[1][1] > 0
        assert np.array_equal(outputs[0][0], outputs[1][0])
        assert np.array_equal(outputs[0][1], outputs[1][1])
