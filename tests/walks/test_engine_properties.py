"""Property-based tests for :class:`BatchWalkStepper` (Hypothesis).

Three invariants the vectorised walk engine must never violate, on any
graph, weighting, or seed:

1. **adjacency** — every step moves a walk to an in-neighbour of its
   previous position (and once a walk dies it stays dead);
2. **monotone survival** — the set of live walks only ever shrinks, so
   per-step survivor counts are non-increasing and walk ids stay a subset;
3. **CSR-block containment** — the weighted inverse-CDF neighbour choice
   resolves inside the current node's CSR block even when floating-point
   rounding lands the searchsorted target exactly on a block boundary
   (stressed with weights spanning twelve orders of magnitude).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.walks.engine import BatchWalkStepper

MAX_STEPS = 8

settings.register_profile("engine", max_examples=30, deadline=None)
settings.load_profile("engine")


@st.composite
def graph_and_seed(draw, weighted=False):
    num_nodes = draw(st.integers(min_value=2, max_value=12))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_nodes - 1), st.integers(0, num_nodes - 1)
            ),
            min_size=1,
            max_size=40,
        )
    )
    edges = [(s, t) for s, t in pairs if s != t]
    if not edges:
        edges = [(0, 1)]
    weights = None
    if weighted:
        # Extreme magnitudes stress the cumulative-weight inverse CDF at
        # block boundaries far harder than benign weights do.
        weights = draw(
            st.lists(
                st.floats(min_value=1e-6, max_value=1e6),
                min_size=len(edges),
                max_size=len(edges),
            )
        )
    graph = DiGraph.from_edges(num_nodes, edges, weights=weights)
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    c = draw(st.sampled_from([0.25, 0.6, 0.8]))
    return graph, seed, c


def in_neighbor_sets(graph):
    return [set(graph.in_neighbors(node).tolist()) for node in range(graph.num_nodes)]


@given(graph_and_seed())
def test_steps_follow_in_adjacency(case):
    graph, seed, c = case
    neighbors = in_neighbor_sets(graph)
    starts = np.arange(graph.num_nodes, dtype=np.int64)
    paths = BatchWalkStepper(graph, c).sample_paths(starts, MAX_STEPS, seed=seed)
    for row in paths:
        for step in range(MAX_STEPS):
            here, there = int(row[step]), int(row[step + 1])
            if here < 0:
                assert there < 0  # dead walks never resurrect
            elif there >= 0:
                assert there in neighbors[here]


@given(graph_and_seed(weighted=True))
def test_weighted_steps_follow_in_adjacency(case):
    graph, seed, c = case
    neighbors = in_neighbor_sets(graph)
    starts = np.arange(graph.num_nodes, dtype=np.int64)
    paths = BatchWalkStepper(graph, c).sample_paths(starts, MAX_STEPS, seed=seed)
    for row in paths:
        for step in range(MAX_STEPS):
            here, there = int(row[step]), int(row[step + 1])
            if here >= 0 and there >= 0:
                # Weighted inverse-CDF never escapes the node's CSR block:
                # landing outside it would pick a non-neighbour.
                assert there in neighbors[here]


@given(graph_and_seed(), st.sampled_from(["coin", "always"]))
def test_survivors_monotone_non_increasing(case, survival):
    graph, seed, c = case
    starts = np.arange(graph.num_nodes, dtype=np.int64)
    stepper = BatchWalkStepper(graph, c)
    previous_alive = starts.size
    previous_ids = set(range(starts.size))
    for batch in stepper.walk(starts, MAX_STEPS, seed=seed, survival=survival):
        assert batch.num_alive <= previous_alive
        ids = set(batch.walk_ids.tolist())
        assert ids <= previous_ids
        assert np.all(np.diff(batch.walk_ids) > 0)  # strictly increasing
        previous_alive = batch.num_alive
        previous_ids = ids


@given(graph_and_seed(weighted=True))
def test_weighted_and_block_bounds_direct(case):
    """Drive the inverse-CDF arithmetic directly: for every live position
    the resolved flat index must sit inside ``[indptr[u], indptr[u+1])``
    even when the searchsorted target equals the block's cumulative top."""
    graph, seed, c = case
    stepper = BatchWalkStepper(graph, c)
    rng = np.random.default_rng(seed)
    positions = np.arange(graph.num_nodes, dtype=np.int64)
    degrees = graph.in_degrees()
    movable = positions[degrees[positions] > 0]
    if movable.size == 0:
        return
    # Worst-case draws: exactly 0 and as close to 1 as float64 allows.
    for draw_value in (0.0, np.nextafter(1.0, 0.0), float(rng.random())):
        draws = np.full(movable.size, draw_value)
        targets = (
            stepper._weight_base[movable]
            + draws * stepper._weight_totals[movable]
        )
        flat = np.searchsorted(stepper._cumulative, targets, side="right")
        np.clip(
            flat,
            stepper._indptr[movable],
            stepper._indptr[movable + 1] - 1,
            out=flat,
        )
        assert np.all(flat >= stepper._indptr[movable])
        assert np.all(flat < stepper._indptr[movable + 1])


def test_boundary_weights_never_escape_block():
    """Deterministic adversarial case: adjacent CSR blocks whose cumulative
    weights differ by 12 orders of magnitude — rounding at the block edge
    must still select a true in-neighbour."""
    edges = [(1, 0), (2, 0), (0, 1), (2, 1), (0, 2)]
    weights = [1e-12, 1e12, 1e12, 1e-12, 1.0]
    graph = DiGraph.from_edges(3, edges, weights=weights)
    neighbors = in_neighbor_sets(graph)
    stepper = BatchWalkStepper(graph, 0.6)
    starts = np.zeros(2000, dtype=np.int64)
    for start in range(3):
        starts[:] = start
        paths = stepper.sample_paths(starts, 4, seed=99)
        for row in paths:
            for step in range(4):
                here, there = int(row[step]), int(row[step + 1])
                if here >= 0 and there >= 0:
                    assert there in neighbors[here]
