"""Tests for the vectorised batch walk stepper."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graph.digraph import DiGraph
from repro.walks.engine import BatchWalkStepper
from repro.walks.sqrt_c import expected_walk_length


class TestWalkMechanics:
    def test_positions_follow_in_edges(self, paper_graph, rng):
        stepper = BatchWalkStepper(paper_graph, 0.6)
        starts = np.arange(paper_graph.num_nodes)
        paths = stepper.sample_paths(starts, 12, seed=rng)
        for row in paths:
            for step in range(1, paths.shape[1]):
                if row[step] < 0:
                    break
                assert row[step] in paper_graph.in_neighbors(row[step - 1])

    def test_walk_ids_strictly_increasing_subset(self, paper_graph, rng):
        stepper = BatchWalkStepper(paper_graph, 0.6)
        starts = np.zeros(100, dtype=np.int64)
        previous = set(range(100))
        for batch in stepper.walk(starts, 20, seed=rng):
            ids = batch.walk_ids
            assert np.all(np.diff(ids) > 0)
            assert set(ids.tolist()) <= previous
            previous = set(ids.tolist())

    def test_dead_ends_kill_walks(self, rng):
        graph = DiGraph.from_edges(2, [(0, 1)])  # node 0 has no in-edges
        stepper = BatchWalkStepper(graph, 0.95)
        batches = list(stepper.walk(np.array([0, 0, 0]), 10, seed=rng))
        assert batches == []

    def test_survival_always_ignores_coin(self, rng):
        # 2-cycle: walks can never die structurally.
        graph = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        stepper = BatchWalkStepper(graph, 0.1)
        batches = list(
            stepper.walk(np.array([0, 1]), 15, seed=rng, survival="always")
        )
        assert len(batches) == 15
        assert all(batch.num_alive == 2 for batch in batches)

    def test_survival_rate_matches_sqrt_c(self, rng):
        graph = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        c = 0.49  # sqrt_c = 0.7
        stepper = BatchWalkStepper(graph, c)
        starts = np.zeros(20000, dtype=np.int64)
        first = next(iter(stepper.walk(starts, 1, seed=rng)))
        assert first.num_alive / 20000 == pytest.approx(0.7, abs=0.02)

    def test_mean_path_length_matches_geometry(self, rng):
        graph = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        c = 0.6
        stepper = BatchWalkStepper(graph, c)
        paths = stepper.sample_paths(np.zeros(20000, dtype=np.int64), 60, seed=rng)
        lengths = (paths >= 0).sum(axis=1) - 1
        assert lengths.mean() == pytest.approx(expected_walk_length(c), rel=0.05)

    def test_scatter_positions(self, paper_graph, rng):
        stepper = BatchWalkStepper(paper_graph, 0.9)
        starts = np.zeros(10, dtype=np.int64)
        for batch in stepper.walk(starts, 3, seed=rng):
            dense = batch.scatter_positions(10)
            assert dense.shape == (10,)
            assert np.array_equal(dense[batch.walk_ids], batch.positions)
            dead = np.setdiff1d(np.arange(10), batch.walk_ids)
            assert np.all(dense[dead] == -1)


class TestValidation:
    def test_invalid_c(self, paper_graph):
        with pytest.raises(ParameterError):
            BatchWalkStepper(paper_graph, 0.0)
        with pytest.raises(ParameterError):
            BatchWalkStepper(paper_graph, 1.0)

    def test_invalid_survival_mode(self, paper_graph):
        stepper = BatchWalkStepper(paper_graph, 0.5)
        with pytest.raises(ParameterError):
            list(stepper.walk(np.array([0]), 5, survival="sometimes"))

    def test_negative_steps(self, paper_graph):
        stepper = BatchWalkStepper(paper_graph, 0.5)
        with pytest.raises(ParameterError):
            list(stepper.walk(np.array([0]), -1))

    def test_out_of_range_start(self, paper_graph):
        stepper = BatchWalkStepper(paper_graph, 0.5)
        with pytest.raises(ParameterError):
            list(stepper.walk(np.array([99]), 5))

    def test_non_1d_starts(self, paper_graph):
        stepper = BatchWalkStepper(paper_graph, 0.5)
        with pytest.raises(ParameterError):
            list(stepper.walk(np.zeros((2, 2), dtype=np.int64), 5))

    def test_empty_starts(self, paper_graph, rng):
        stepper = BatchWalkStepper(paper_graph, 0.5)
        assert list(stepper.walk(np.array([], dtype=np.int64), 5, seed=rng)) == []


class TestStatisticalEquivalence:
    def test_occupancy_matches_analytic(self, rng):
        """Batch walks at step k must hit the analytic √c-walk occupancy
        (the corrected revReach distribution)."""
        from repro.core.revreach import revreach_levels

        graph = DiGraph.from_edges(
            5, [(1, 0), (2, 0), (3, 1), (4, 1), (0, 2), (2, 3), (1, 4), (3, 4)]
        )
        c = 0.64
        tree = revreach_levels(graph, 0, 3, c, variant="corrected")
        stepper = BatchWalkStepper(graph, c)
        samples = 60000
        counts = {1: np.zeros(5), 2: np.zeros(5), 3: np.zeros(5)}
        for batch in stepper.walk(
            np.zeros(samples, dtype=np.int64), 3, seed=rng
        ):
            counts[batch.step] += np.bincount(batch.positions, minlength=5)
        for step in (1, 2, 3):
            empirical = counts[step] / samples
            assert np.allclose(empirical, tree.matrix[step], atol=0.01)
