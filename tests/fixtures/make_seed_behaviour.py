"""Regenerate tests/fixtures/seed_behaviour.json.

Run from the repo root (PYTHONPATH=src python tests/fixtures/make_seed_behaviour.py).
The fixture pins the exact float bit patterns produced by fixed-seed
CrashSim / CrashSim-T / parallel runs so representation refactors
(dense -> sparse trees) can prove byte-identical behaviour.
"""

import json
import pathlib

import numpy as np

from repro.core.crashsim import crashsim
from repro.core.crashsim_t import crashsim_t
from repro.core.params import CrashSimParams
from repro.core.queries import ThresholdQuery
from repro.graph.generators import evolve_snapshots, preferential_attachment
from repro.parallel import parallel_crashsim


def f2h(values):
    """Floats -> hex bit patterns (lossless, diff-friendly)."""
    return [float.hex(float(v)) for v in values]


def main() -> None:
    out = {}
    params = CrashSimParams(n_r_override=64)
    graph = preferential_attachment(120, 3, directed=True, seed=5)

    static = crashsim(graph, 0, params=params, seed=123)
    out["static"] = {
        "candidates": static.candidates.tolist(),
        "scores": f2h(static.scores),
        "n_r": static.n_r,
    }

    # Legacy 16-shard layout (predates shard autotuning; the shard plan
    # defines the RNG streams, so it is pinned explicitly).
    par = parallel_crashsim(
        graph, 0, params=params, seed=123, workers=1, shards=16
    )
    out["parallel_w1"] = {
        "candidates": par.candidates.tolist(),
        "scores": f2h(par.scores),
    }

    # Autotuned shard plan (the default since shard autotuning landed) —
    # a pure function of the query shape, so equally pinnable.
    par_auto = parallel_crashsim(graph, 0, params=params, seed=123, workers=1)
    out["parallel_auto"] = {
        "candidates": par_auto.candidates.tolist(),
        "scores": f2h(par_auto.scores),
    }

    temporal = evolve_snapshots(graph, 6, churn_rate=0.01, seed=9)
    runs = {}
    for label, kwargs in {
        "pruned": dict(use_delta_pruning=True, use_difference_pruning=True),
        "diff_only": dict(use_delta_pruning=False, use_difference_pruning=True),
        "unpruned": dict(use_delta_pruning=False, use_difference_pruning=False),
    }.items():
        res = crashsim_t(
            temporal,
            0,
            ThresholdQuery(theta=0.001),
            params=params,
            seed=77,
            **kwargs,
        )
        runs[label] = {
            "survivors": list(res.survivors),
            "history": [
                {str(node): float.hex(float(score)) for node, score in snap.items()}
                for snap in res.history
            ],
        }
    out["crashsim_t"] = runs

    path = pathlib.Path(__file__).with_name("seed_behaviour.json")
    path.write_text(json.dumps(out, indent=1, sort_keys=True) + "\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
